"""Fixture tests for every repro-lint rule: one firing + one quiet case each."""

import textwrap

import pytest

from repro.analysis.lint import (
    RULES,
    Violation,
    check_config_coverage,
    check_spec_versions,
    lint_file,
    lint_paths,
)


def _write(tmp_path, relative, source):
    path = tmp_path / relative
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return path


def _rules(violations):
    return [violation.rule for violation in violations]


class TestRL001LruCache:
    def test_fires_on_functools_lru_cache(self, tmp_path):
        path = _write(
            tmp_path,
            "src/repro/util.py",
            """
            import functools

            @functools.lru_cache(maxsize=None)
            def lookup(self, key):
                return key
            """,
        )
        assert _rules(lint_file(path)) == ["RL001"]

    def test_fires_on_from_import_and_bare_cache(self, tmp_path):
        path = _write(
            tmp_path,
            "src/repro/util.py",
            """
            from functools import cache, lru_cache

            @lru_cache
            def a(x):
                return x

            @cache
            def b(x):
                return x
            """,
        )
        assert _rules(lint_file(path)) == ["RL001", "RL001"]

    def test_quiet_on_instance_memo_and_wraps(self, tmp_path):
        path = _write(
            tmp_path,
            "src/repro/util.py",
            """
            import functools
            from repro.memo import instance_memo

            class Thing:
                @instance_memo("_memo")
                def lookup(self, key):
                    return key

            @functools.wraps(print)
            def wrapped(*args):
                return None
            """,
        )
        assert lint_file(path) == []


class TestRL002SeededRng:
    def test_fires_on_unseeded_default_rng(self, tmp_path):
        path = _write(
            tmp_path,
            "src/repro/util.py",
            """
            import numpy as np

            def draw():
                return np.random.default_rng().normal()
            """,
        )
        assert _rules(lint_file(path)) == ["RL002"]

    def test_fires_on_legacy_global_api(self, tmp_path):
        path = _write(
            tmp_path,
            "tests/test_x.py",
            """
            import numpy as np

            def test_draw():
                np.random.seed(0)
                return np.random.binomial(4, 0.5)
            """,
        )
        assert _rules(lint_file(path)) == ["RL002", "RL002"]

    def test_fires_through_from_import_alias(self, tmp_path):
        path = _write(
            tmp_path,
            "src/repro/util.py",
            """
            from numpy.random import default_rng as mk_rng

            def draw():
                return mk_rng()
            """,
        )
        assert _rules(lint_file(path)) == ["RL002"]

    def test_quiet_on_seeded_constructions(self, tmp_path):
        path = _write(
            tmp_path,
            "src/repro/util.py",
            """
            import numpy as np

            def draw(seed):
                a = np.random.default_rng(seed)
                b = np.random.default_rng(seed=seed)
                c = np.random.Generator(np.random.PCG64(seed))
                return a, b, c
            """,
        )
        assert lint_file(path) == []

    def test_quiet_outside_src_and_tests(self, tmp_path):
        path = _write(
            tmp_path,
            "scripts/adhoc.py",
            """
            import numpy as np

            rng = np.random.default_rng()
            """,
        )
        assert lint_file(path) == []


class TestRL003WallClock:
    def test_fires_inside_sim_packages(self, tmp_path):
        for package in ("engine", "network", "workload", "mapping", "faults"):
            path = _write(
                tmp_path,
                f"src/repro/{package}/mod.py",
                """
                import time

                def stamp():
                    return time.perf_counter()
                """,
            )
            assert _rules(lint_file(path)) == ["RL003"], package

    def test_fires_on_datetime_now(self, tmp_path):
        path = _write(
            tmp_path,
            "src/repro/engine/mod.py",
            """
            import datetime

            def stamp():
                return datetime.datetime.now()
            """,
        )
        assert _rules(lint_file(path)) == ["RL003"]

    def test_quiet_outside_sim_packages(self, tmp_path):
        path = _write(
            tmp_path,
            "src/repro/experiments/mod.py",
            """
            import time

            def stamp():
                return time.perf_counter()
            """,
        )
        assert lint_file(path) == []

    def test_quiet_on_simulated_time_attribute(self, tmp_path):
        path = _write(
            tmp_path,
            "src/repro/engine/mod.py",
            """
            def advance(state):
                state.time = state.time + 1.0
                return state.clock.time()
            """,
        )
        assert lint_file(path) == []


class TestRL004BuiltinHash:
    def test_fires_on_hash_call(self, tmp_path):
        path = _write(
            tmp_path,
            "src/repro/util.py",
            """
            def derive(seed, layer):
                return hash((seed, layer)) % 2**32
            """,
        )
        assert _rules(lint_file(path)) == ["RL004"]

    def test_quiet_on_dunder_hash_and_hashlib(self, tmp_path):
        path = _write(
            tmp_path,
            "src/repro/util.py",
            """
            import hashlib

            class Key:
                def __hash__(self):
                    return 7

            def digest(payload):
                return hashlib.sha256(payload).hexdigest()
            """,
        )
        assert lint_file(path) == []


class TestSuppression:
    def test_disable_with_reason_silences_rule(self, tmp_path):
        path = _write(
            tmp_path,
            "src/repro/util.py",
            """
            def derive(key):
                return hash(key)  # repro-lint: disable=RL004 -- interning probe
            """,
        )
        assert lint_file(path) == []

    def test_disable_without_reason_is_rl000(self, tmp_path):
        # The reason-less disable is spliced in at runtime so this test
        # file's own source never carries one (the repo-wide line scan
        # would flag it here otherwise — fixture strings are still lines).
        path = _write(
            tmp_path,
            "src/repro/util.py",
            """
            def derive(key):
                return hash(key)  # repro-lint: MARKER
            """.replace("MARKER", "disable=RL004"),
        )
        assert _rules(lint_file(path)) == ["RL000", "RL004"]

    def test_disable_only_silences_named_rule(self, tmp_path):
        path = _write(
            tmp_path,
            "src/repro/util.py",
            """
            def derive(key):
                return hash(key)  # repro-lint: disable=RL002 -- wrong id
            """,
        )
        assert _rules(lint_file(path)) == ["RL004"]

    def test_disable_multiple_ids(self, tmp_path):
        path = _write(
            tmp_path,
            "src/repro/engine/mod.py",
            """
            import time

            def stamp(key):
                return hash(key) + time.time()  # repro-lint: disable=RL003, RL004 -- fixture
            """,
        )
        assert lint_file(path) == []


class TestRL005ConfigCoverage:
    CONFIG = """
    from dataclasses import dataclass

    @dataclass
    class ServingConfig:
        num_iterations: int = 10
        shadow_slots: int = 2
        unreferenced_flag: bool = False
    """

    def test_fires_on_unreferenced_field(self, tmp_path):
        config = _write(tmp_path, "src/repro/engine/serving.py", self.CONFIG)
        _write(
            tmp_path,
            "tests/test_cfg.py",
            """
            def test_cfg(make):
                cfg = make(num_iterations=3)
                assert cfg.shadow_slots >= 0
            """,
        )
        violations = check_config_coverage(config, tmp_path / "tests")
        assert _rules(violations) == ["RL005"]
        assert "unreferenced_flag" in violations[0].message

    def test_quiet_when_all_fields_referenced(self, tmp_path):
        config = _write(tmp_path, "src/repro/engine/serving.py", self.CONFIG)
        _write(
            tmp_path,
            "tests/test_cfg.py",
            """
            def test_cfg(make):
                cfg = make(num_iterations=3, unreferenced_flag=True)
                assert cfg.shadow_slots >= 0
            """,
        )
        assert check_config_coverage(config, tmp_path / "tests") == []


class TestRL006SpecVersions:
    def _results_dir(self, tmp_path, spec, params, stale=False):
        import json

        from repro.experiments.cache import ResultCache

        results = tmp_path / "results"
        cache = ResultCache(results / "cache")
        cache.root.mkdir(parents=True)
        key = cache.key(spec, params)
        if stale:
            key = "0" * len(key)
        (results / "cache" / f"{key}.json").write_text(
            json.dumps({"spec": spec.name, "params": params, "value": 1.0})
        )
        return results

    def _spec(self, version):
        from repro.experiments.spec import ExperimentSpec

        def point(params):
            return {"value": 1.0}

        return ExperimentSpec(
            name="fixture-spec",
            figure="fixture",
            description="fixture",
            grid={"alpha": [1]},
            point=point,
            version=version,
        )

    def test_quiet_when_keys_rederive(self, tmp_path):
        spec = self._spec(version=3)
        results = self._results_dir(tmp_path, spec, {"alpha": 1})
        assert check_spec_versions(results, specs=[spec]) == []

    def test_fires_on_stale_key(self, tmp_path):
        spec = self._spec(version=3)
        results = self._results_dir(tmp_path, spec, {"alpha": 1}, stale=True)
        violations = check_spec_versions(results, specs=[spec])
        assert _rules(violations) == ["RL006"]
        assert "fixture-spec" in violations[0].message

    def test_fires_on_unregistered_spec(self, tmp_path):
        spec = self._spec(version=3)
        results = self._results_dir(tmp_path, spec, {"alpha": 1})
        violations = check_spec_versions(results, specs=[])
        assert _rules(violations) == ["RL006"]
        assert "no registered spec" in violations[0].message

    def test_quiet_when_no_cache_dir(self, tmp_path):
        assert check_spec_versions(tmp_path / "results", specs=[]) == []


class TestDriver:
    def test_unparsable_file_reports_rl000(self, tmp_path):
        path = _write(tmp_path, "src/repro/bad.py", "def broken(:\n")
        violations = lint_file(path)
        assert _rules(violations) == ["RL000"]
        assert "does not parse" in violations[0].message

    def test_lint_paths_walks_directories(self, tmp_path):
        _write(
            tmp_path,
            "src/repro/a.py",
            """
            def derive(key):
                return hash(key)
            """,
        )
        _write(
            tmp_path,
            "src/repro/b.py",
            """
            import numpy as np

            def draw():
                return np.random.default_rng()
            """,
        )
        violations = lint_paths([tmp_path / "src"], project_rules=False)
        assert sorted(_rules(violations)) == ["RL002", "RL004"]

    def test_violation_format_and_rule_table(self):
        violation = Violation("src/x.py", 7, "RL004", "message")
        assert violation.format() == "src/x.py:7: RL004 message"
        assert set(RULES) == {
            "RL000",
            "RL001",
            "RL002",
            "RL003",
            "RL004",
            "RL005",
            "RL006",
        }

    def test_cli_exit_codes(self, tmp_path, capsys):
        from repro.analysis.lint import main

        bad = _write(
            tmp_path,
            "src/repro/bad.py",
            """
            def derive(key):
                return hash(key)
            """,
        )
        assert main([str(bad), "--no-project-rules"]) == 1
        assert "RL004" in capsys.readouterr().out
        good = _write(tmp_path, "src/repro/good.py", "VALUE = 1\n")
        assert main([str(good), "--no-project-rules"]) == 0
        assert "clean" in capsys.readouterr().out
