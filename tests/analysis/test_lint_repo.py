"""The tree itself must stay lint-clean — the empty-baseline contract.

CI runs ``python -m repro.analysis lint src tests``; this test holds the
same invariant from inside the suite, so a violation fails locally before
it ever reaches the lint job.
"""

from pathlib import Path

import pytest

from repro.analysis.lint import lint_paths

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture(scope="module")
def repo_dirs():
    src = REPO_ROOT / "src"
    tests = REPO_ROOT / "tests"
    if not (src / "repro").is_dir() or not tests.is_dir():
        pytest.skip("not running from a source checkout")
    return src, tests


def test_tree_is_lint_clean(repo_dirs):
    src, tests = repo_dirs
    violations = lint_paths([src, tests], project_rules=False)
    assert violations == [], "\n" + "\n".join(v.format() for v in violations)


def test_project_rules_hold(repo_dirs):
    """RL005 (config coverage) + RL006 (spec-version drift) on the real tree."""
    src, tests = repo_dirs
    from repro.analysis.lint import check_config_coverage, check_spec_versions

    for class_name in ("ServingConfig", "BalancingConfig", "PricingConfig"):
        coverage = check_config_coverage(
            src / "repro" / "engine" / "serving.py", tests, class_name
        )
        assert coverage == [], "\n" + "\n".join(v.format() for v in coverage)

    results_dir = REPO_ROOT / "benchmarks" / "results"
    if (results_dir / "cache").is_dir():
        drift = check_spec_versions(results_dir)
        assert drift == [], "\n" + "\n".join(v.format() for v in drift)
