"""Regression tests for the serving engine's vectorized statistics path."""

from dataclasses import replace

import numpy as np
import pytest

from repro.analysis.load import device_token_loads
from repro.balancer import NonInvasiveBalancer
from repro.engine import EngineConfig, ServingConfig, ServingSimulator
from repro.models import QWEN3_235B
from repro.systems import build_wsc
from repro.workload import GatingSimulator, MATH


@pytest.fixture
def simulator():
    model = replace(QWEN3_235B, name="qwen3-16e", num_experts=16)
    system = build_wsc(model, side=4, tp=4, mapping="er")
    workload = GatingSimulator(
        model,
        num_groups=system.mapping.dp,
        tokens_per_group=32,
        mixer=MATH,
        num_layers=2,
        seed=3,
    )
    return ServingSimulator(
        system.device,
        model,
        system.mapping,
        workload,
        NonInvasiveBalancer,
        engine_config=EngineConfig(tokens_per_group=32),
        serving_config=ServingConfig(num_iterations=30),
    )


def loop_device_load_stats(simulator, layer_loads):
    """The seed implementation of _device_load_stats, verbatim."""
    max_loads = []
    mean_loads = []
    for layer in range(simulator.num_layers):
        device_loads = device_token_loads(
            layer_loads[layer], simulator.layer_placement(layer)
        )
        max_loads.append(device_loads.max())
        mean_loads.append(device_loads.mean())
    return float(np.mean(max_loads)), float(np.mean(mean_loads))


class TestDeviceLoadStats:
    def test_matches_loop_on_native_placement(self, simulator):
        rng = np.random.default_rng(11)
        layer_loads = rng.uniform(0.0, 64.0, (2, 16))
        assert simulator._device_load_stats(layer_loads) == pytest.approx(
            loop_device_load_stats(simulator, layer_loads)
        )

    def test_matches_loop_after_serving_run(self, simulator):
        trace = simulator.run()
        assert len(trace.records) == 30
        # The run mutates placements (migrations + evictions); the stats
        # must still agree with the per-layer loop on fresh loads.
        rng = np.random.default_rng(13)
        layer_loads = rng.uniform(0.0, 64.0, (2, 16))
        assert simulator._device_load_stats(layer_loads) == pytest.approx(
            loop_device_load_stats(simulator, layer_loads)
        )

    def test_record_load_stats_are_consistent(self, simulator):
        record = simulator.step()
        assert record.max_device_load >= record.mean_device_load > 0
