"""Fault injection through the serving loop: zero-cost when disabled,
deterministic when enabled, and repaired within budget."""

import numpy as np
import pytest

from repro.balancer import (
    GreedyBalancer,
    NoBalancer,
    NonInvasiveBalancer,
    TopologyAwareBalancer,
)
from repro.engine import EngineConfig, ServingConfig, ServingSimulator
from repro.faults import DeviceFailure, FaultSchedule, LinkDegradation, Straggler
from repro.models import QWEN3_235B
from repro.systems import build_wsc
from repro.workload import AzureLikeMixer, CHAT, CODING, MATH, PRIVACY, GatingSimulator

ALL_STRATEGIES = [
    NoBalancer,
    GreedyBalancer,
    TopologyAwareBalancer,
    NonInvasiveBalancer,
]


def make_simulator(
    balancer_cls,
    side=4,
    num_layers=4,
    iterations=30,
    seed=11,
    fault_schedule=None,
    stacked=None,
    **serving_kwargs,
):
    system = build_wsc(QWEN3_235B, side=side, tp=4, mapping="er")
    workload = GatingSimulator(
        QWEN3_235B,
        num_groups=system.mapping.dp,
        tokens_per_group=64,
        mixer=AzureLikeMixer([CHAT, CODING, MATH, PRIVACY], period_iters=30),
        num_layers=num_layers,
        seed=seed,
    )
    return ServingSimulator(
        system.device,
        QWEN3_235B,
        system.mapping,
        workload,
        balancer_cls,
        engine_config=EngineConfig(tokens_per_group=64),
        serving_config=ServingConfig.from_flat(num_iterations=iterations, **serving_kwargs),
        stacked=stacked,
        fault_schedule=fault_schedule,
    )


def fingerprint(record):
    """Every float and counter in one record, for bitwise comparisons."""
    return (
        record.latency,
        record.alltoall_mean,
        record.breakdown.alltoall,
        record.breakdown.allreduce,
        record.breakdown.attention.total,
        record.breakdown.moe.total,
        record.max_device_load,
        record.mean_device_load,
        record.migration_exposed,
        record.migrations_started,
        record.migrations_completed,
        record.faults_active,
        record.experts_orphaned,
        record.repair_migrations,
        record.repair_exposed,
    )


class TestScheduleValidation:
    def test_requires_stacked_engine(self):
        with pytest.raises(ValueError, match="stacked engine"):
            make_simulator(
                GreedyBalancer,
                stacked=False,
                fault_schedule=FaultSchedule.single_failure(5, 3),
            )

    def test_device_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            make_simulator(
                GreedyBalancer, fault_schedule=FaultSchedule.single_failure(5, 16)
            )

    def test_link_endpoint_out_of_range(self):
        schedule = FaultSchedule([LinkDegradation(5, 0, 99, 0.5)])
        with pytest.raises(ValueError, match="out of range"):
            make_simulator(GreedyBalancer, fault_schedule=schedule)

    def test_nonexistent_link(self):
        # 0 and 5 are mesh diagonals — no physical link between them.
        schedule = FaultSchedule([LinkDegradation(5, 0, 5, 0.5)])
        with pytest.raises(ValueError, match="no link"):
            make_simulator(GreedyBalancer, fault_schedule=schedule)

    def test_rejects_killing_entire_tp_group(self):
        simulator = make_simulator(GreedyBalancer)
        group = list(simulator.mapping.tp_groups[0])
        schedule = FaultSchedule.correlated_failures(5, group)
        with pytest.raises(ValueError, match="entire TP group"):
            make_simulator(GreedyBalancer, fault_schedule=schedule)

    def test_rejects_killing_every_device(self):
        simulator = make_simulator(GreedyBalancer)
        # Sidestep the TP-group check firing first by checking the message.
        schedule = FaultSchedule.correlated_failures(
            5, list(range(simulator.mapping.topology.num_devices))
        )
        with pytest.raises(ValueError):
            make_simulator(GreedyBalancer, fault_schedule=schedule)


class TestZeroCostWhenDisabled:
    def test_empty_schedule_bitwise_identical_to_none(self):
        clean = make_simulator(GreedyBalancer).run()
        empty = make_simulator(
            GreedyBalancer, fault_schedule=FaultSchedule([])
        ).run()
        assert [fingerprint(r) for r in empty.records] == [
            fingerprint(r) for r in clean.records
        ]

    def test_prefix_bitwise_identical_before_first_fault(self):
        """The fault path consumes no RNG, so the trace up to the first
        event is bit-identical to the fault-free run."""
        fault_at = 20
        clean = make_simulator(GreedyBalancer, iterations=30).run()
        faulted = make_simulator(
            GreedyBalancer,
            iterations=30,
            fault_schedule=FaultSchedule.single_failure(fault_at, 5),
        ).run()
        assert [fingerprint(r) for r in faulted.records[:fault_at]] == [
            fingerprint(r) for r in clean.records[:fault_at]
        ]
        assert faulted.records[fault_at].faults_active == 1
        assert faulted.records[fault_at].repair_migrations > 0
        assert faulted.records[fault_at].repair_exposed > 0.0
        assert clean.first_fault_index() is None
        assert faulted.first_fault_index() == fault_at

    def test_clean_trace_metrics_are_nan(self):
        trace = make_simulator(NoBalancer, iterations=10).run()
        assert np.isnan(trace.time_to_recovery())
        assert np.isnan(trace.degraded_throughput_fraction())
        assert trace.num_repairs() == 0
        assert trace.total_repair_exposed() == 0.0


class TestDeterminism:
    @pytest.mark.parametrize("balancer_cls", ALL_STRATEGIES)
    def test_same_seed_same_trace(self, balancer_cls):
        schedule = FaultSchedule(
            [
                DeviceFailure(iteration=12, device=5),
                LinkDegradation(iteration=15, src=0, dst=1, factor=0.2, duration=5),
                Straggler(iteration=18, device=10, factor=2.5, duration=4),
            ]
        )
        a = make_simulator(balancer_cls, fault_schedule=schedule).run()
        b = make_simulator(balancer_cls, fault_schedule=schedule).run()
        assert [fingerprint(r) for r in a.records] == [
            fingerprint(r) for r in b.records
        ]


class TestFailStopRecovery:
    @pytest.mark.parametrize("balancer_cls", [GreedyBalancer, NonInvasiveBalancer])
    def test_64_device_failstop_fully_repaired(self, balancer_cls):
        """One tile dies at iteration 25 of a 64-device run: every orphan
        is re-replicated the same iteration, the dead device drops out of
        every layer, and the load ratio recovers within the gated budget."""
        fault_at = 25
        simulator = make_simulator(
            balancer_cls,
            side=8,
            iterations=50,
            fault_schedule=FaultSchedule.single_failure(fault_at, 27),
        )
        trace = simulator.run()
        assert all(r.experts_orphaned == 0 for r in trace.records)
        assert trace.records[fault_at].repair_migrations > 0
        layers, experts = simulator.engine.placement.orphaned()
        assert layers.size == 0 and experts.size == 0
        for layer in simulator.engine.placement.layers:
            assert 27 in layer.dead_devices
            assert not layer.replica_matrix[:, 27].any()
        recovery = trace.time_to_recovery(epsilon=0.1)
        assert np.isfinite(recovery)
        assert recovery <= 15

    def test_dead_device_attention_redistributes(self):
        """Losing one member of a tp=4 group scales attention by 4/3."""
        fault_at = 10
        clean = make_simulator(NoBalancer, iterations=15).run()
        faulted = make_simulator(
            NoBalancer,
            iterations=15,
            fault_schedule=FaultSchedule.single_failure(fault_at, 5),
        ).run()
        before = clean.records[fault_at].breakdown.attention.total
        after = faulted.records[fault_at].breakdown.attention.total
        assert after == pytest.approx(before * 4.0 / 3.0)

    def test_correlated_failures_repaired(self):
        """A whole mesh row dies at once.  Losing 4 of 16 devices orphans
        32 experts per layer, so the default single shadow slot cannot
        absorb them — with 4 slots per survivor the repair completes."""
        schedule = FaultSchedule.correlated_failures(10, [4, 5, 6, 7])
        simulator = make_simulator(
            GreedyBalancer, iterations=25, shadow_slots=4, fault_schedule=schedule
        )
        trace = simulator.run()
        assert trace.records[10].faults_active == 4
        assert trace.num_repairs() > 0
        layers, _ = simulator.engine.placement.orphaned()
        assert layers.size == 0
        assert trace.records[-1].experts_orphaned == 0

    def test_capacity_exhaustion_reports_orphans(self):
        """With a single shadow slot the same rack loss cannot be fully
        repaired; the trace reports the honest orphan count instead of
        silently pretending recovery."""
        schedule = FaultSchedule.correlated_failures(10, [4, 5, 6, 7])
        trace = make_simulator(
            GreedyBalancer, iterations=15, fault_schedule=schedule
        ).run()
        assert trace.records[10].experts_orphaned > 0
        assert trace.time_to_recovery() == float("inf")


class TestTransientFaults:
    def test_straggler_window_raises_then_restores(self):
        """Compute latency rises for the window and returns bitwise to the
        fault-free trace once the window expires."""
        schedule = FaultSchedule([Straggler(10, device=5, factor=4.0, duration=5)])
        clean = make_simulator(NoBalancer, iterations=20).run()
        faulted = make_simulator(
            NoBalancer, iterations=20, fault_schedule=schedule
        ).run()
        for index in range(10, 15):
            assert faulted.records[index].latency > clean.records[index].latency
            assert faulted.records[index].faults_active == 1
        # After expiry the health record is clean and every cached price
        # recomputes to the pristine value.
        assert [fingerprint(r) for r in faulted.records[15:]] == [
            fingerprint(r) for r in clean.records[15:]
        ]

    def test_link_degradation_prices_alltoall_higher(self):
        schedule = FaultSchedule(
            [LinkDegradation(5, src=0, dst=1, factor=0.05, duration=4)]
        )
        clean = make_simulator(NoBalancer, iterations=15).run()
        faulted = make_simulator(
            NoBalancer, iterations=15, fault_schedule=schedule
        ).run()
        for index in range(5, 9):
            assert (
                faulted.records[index].breakdown.alltoall
                > clean.records[index].breakdown.alltoall
            )
        assert [fingerprint(r) for r in faulted.records[9:]] == [
            fingerprint(r) for r in clean.records[9:]
        ]

    def test_permanent_link_loss_never_restores(self):
        schedule = FaultSchedule([LinkDegradation.link_loss(5, src=0, dst=1)])
        faulted = make_simulator(NoBalancer, iterations=10, fault_schedule=schedule)
        trace = faulted.run()
        assert all(r.faults_active == 1 for r in trace.records[5:])

    def test_straggler_on_dead_device_ignored(self):
        schedule = FaultSchedule(
            [
                DeviceFailure(iteration=8, device=5),
                Straggler(iteration=10, device=5, factor=3.0, duration=4),
            ]
        )
        trace = make_simulator(
            GreedyBalancer, iterations=15, fault_schedule=schedule
        ).run()
        # The straggler lands on a corpse: only the failure stays active.
        assert all(r.faults_active == 1 for r in trace.records[10:])


class TestRecoveryMetrics:
    def test_degraded_throughput_fraction_positive_after_failure(self):
        trace = make_simulator(
            GreedyBalancer,
            iterations=30,
            fault_schedule=FaultSchedule.single_failure(20, 5),
        ).run()
        fraction = trace.degraded_throughput_fraction()
        assert 0.0 <= fraction < 1.0
        assert fraction > 0.0

    def test_repair_accounting_sums(self):
        trace = make_simulator(
            GreedyBalancer,
            iterations=30,
            fault_schedule=FaultSchedule.single_failure(20, 5),
        ).run()
        assert trace.num_repairs() == sum(r.repair_migrations for r in trace.records)
        assert trace.total_repair_exposed() == sum(
            r.repair_exposed for r in trace.records
        )
        assert trace.records[20].latency > trace.records[19].latency


class TestHealthIntrospection:
    """Public fault-health accessors the serving dispatcher consumes."""

    def test_clean_run_reports_full_health(self):
        simulator = make_simulator(GreedyBalancer, iterations=5)
        simulator.run()
        assert simulator.dead_devices() == frozenset()
        assert simulator.straggling_devices() == frozenset()
        assert all(simulator.group_health())

    def test_failure_marks_device_and_group(self):
        simulator = make_simulator(
            GreedyBalancer,
            iterations=10,
            fault_schedule=FaultSchedule.single_failure(5, 3),
        )
        simulator.run()
        assert simulator.dead_devices() == frozenset({3})
        health = simulator.group_health()
        groups = simulator.mapping.tp_groups
        for index, group in enumerate(groups):
            assert health[index] == (3 not in group)
        assert sum(health) == len(groups) - 1

    def test_straggler_window_blacklists_then_reinstates(self):
        schedule = FaultSchedule(
            [Straggler(iteration=3, device=2, factor=3.0, duration=4)]
        )
        simulator = make_simulator(
            GreedyBalancer, iterations=30, fault_schedule=schedule
        )
        seen_active = False
        for _ in range(12):
            simulator.step()
            if 2 in simulator.straggling_devices():
                seen_active = True
        assert seen_active
        # Window [3, 7) long expired: the device is reinstated.
        assert simulator.straggling_devices() == frozenset()
        assert simulator.dead_devices() == frozenset()
        assert all(simulator.group_health())
