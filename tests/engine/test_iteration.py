"""Tests for the iteration latency model."""

import numpy as np
import pytest

from repro.engine.iteration import (
    EngineConfig,
    IterationBreakdown,
    IterationSimulator,
    pipelined_time,
)
from repro.engine.compute import RooflineTimes
from repro.hardware.device import B200
from repro.models import QWEN3_235B
from repro.systems import build_wsc


@pytest.fixture
def system():
    return build_wsc(QWEN3_235B, side=4, tp=4, mapping="er")


@pytest.fixture
def simulator(system):
    return IterationSimulator(
        system.device,
        system.model,
        system.mapping,
        EngineConfig(tokens_per_group=64),
    )


class TestPipelinedTime:
    def test_perfect_overlap_limit(self):
        assert pipelined_time(10.0, 10.0, 10**9) == pytest.approx(10.0)

    def test_no_overlap_limit(self):
        assert pipelined_time(10.0, 4.0, 1) == 14.0

    def test_symmetric(self):
        assert pipelined_time(3.0, 7.0, 4) == pipelined_time(7.0, 3.0, 4)

    def test_rejects_bad_stages(self):
        with pytest.raises(ValueError):
            pipelined_time(1.0, 1.0, 0)


class TestEngineConfig:
    def test_defaults(self):
        config = EngineConfig()
        assert config.tokens_per_group == 256
        assert config.decode is True

    def test_validation(self):
        with pytest.raises(ValueError):
            EngineConfig(tokens_per_group=0)
        with pytest.raises(ValueError):
            EngineConfig(pipeline_stages=0)
        with pytest.raises(ValueError):
            EngineConfig(context_len=-1)


class TestBreakdown:
    def test_phases_and_total(self):
        breakdown = IterationBreakdown(
            attention=RooflineTimes(1e-6, 1e-6),
            allreduce=4e-6,
            dispatch=3e-6,
            combine=3e-6,
            moe=RooflineTimes(2e-6, 2e-6),
            pipeline_stages=4,
            overlap=True,
        )
        assert breakdown.alltoall == pytest.approx(6e-6)
        assert breakdown.attention_phase == pytest.approx(4e-6 + 2e-6 / 4)
        assert breakdown.moe_phase == pytest.approx(6e-6 + 4e-6 / 4)
        assert breakdown.total == pytest.approx(
            breakdown.attention_phase + breakdown.moe_phase
        )

    def test_no_overlap_sums(self):
        breakdown = IterationBreakdown(
            attention=RooflineTimes(1e-6, 0.0),
            allreduce=4e-6,
            dispatch=1e-6,
            combine=1e-6,
            moe=RooflineTimes(2e-6, 0.0),
            overlap=False,
        )
        assert breakdown.attention_phase == pytest.approx(5e-6)
        assert breakdown.moe_phase == pytest.approx(4e-6)

    def test_migration_on_critical_path(self):
        breakdown = IterationBreakdown(
            attention=RooflineTimes(1e-6, 0.0),
            allreduce=0.0,
            dispatch=0.0,
            combine=0.0,
            moe=RooflineTimes(1e-6, 0.0),
            migration_exposed=5e-6,
        )
        assert breakdown.total == pytest.approx(1e-6 + 1e-6 + 5e-6)


class TestSimulateLayer:
    def test_full_simulation(self, simulator, system):
        counts = np.full((4, 128), 64 * 8 / 128)
        placement = system.fresh_placement()
        sim = simulator.simulate_layer(counts, placement)
        assert sim.breakdown.total > 0
        assert sim.breakdown.allreduce > 0
        assert sim.breakdown.alltoall > 0
        assert sim.allreduce_result.link_bytes
        assert sim.alltoall_result.link_bytes

    def test_counts_shape_validated(self, simulator, system):
        with pytest.raises(ValueError, match="shape"):
            simulator.simulate_layer(np.zeros((3, 128)), system.fresh_placement())

    def test_allreduce_volume(self, simulator):
        assert simulator.allreduce_volume() == 64 * QWEN3_235B.token_bytes

    def test_hot_expert_slows_moe(self, simulator, system):
        placement = system.fresh_placement()
        balanced = np.full((4, 128), 4.0)
        skewed = balanced.copy()
        skewed[:, 0] = 200.0
        balanced_sim = simulator.simulate_layer(balanced, placement)
        skewed_sim = simulator.simulate_layer(skewed, placement)
        assert skewed_sim.breakdown.moe.total > balanced_sim.breakdown.moe.total

    def test_migration_exposed_passed_through(self, simulator, system):
        counts = np.full((4, 128), 4.0)
        sim = simulator.simulate_layer(
            counts, system.fresh_placement(), migration_exposed=1e-3
        )
        assert sim.breakdown.migration_exposed == 1e-3


class TestAllreduceCache:
    def test_cache_returns_same_result_object(self, simulator):
        volume = simulator.allreduce_volume()
        first = simulator.simulate_allreduce(volume)
        assert simulator.simulate_allreduce(volume) is first

    def test_cached_matches_uncached(self, simulator, system):
        volume = simulator.allreduce_volume()
        cached = simulator.simulate_allreduce(volume)
        fresh = system.mapping.simulate_allreduce(volume)
        assert cached.duration == fresh.duration
        assert cached.num_steps == fresh.num_steps
        assert cached.link_bytes == fresh.link_bytes

    def test_distinct_volumes_get_distinct_entries(self, simulator):
        small = simulator.simulate_allreduce(1e6)
        large = simulator.simulate_allreduce(2e6)
        assert small is not large
        assert large.duration > small.duration
