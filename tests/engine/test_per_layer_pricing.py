"""Per-layer all-to-all pricing against the layer-0 broadcast oracle.

``ServingConfig.per_layer_alltoall`` prices every layer's all-to-all
against its own placement.  These tests pin the PR 4 *demand-broadcast*
semantics (layer 0's demand rows against every layer's placement), so the
fixture disables the newer ``per_layer_demand`` resolution — the resolved
path has its own contract in ``test_demand_resolved.py``.  The contract
with the old layer-0-broadcast path (kept behind
``per_layer_alltoall=False``):

* while no migration has diverged any layer from layer 0's placement
  content, the two paths produce *bit-identical* traces;
* once a migration lands on a layer > 0, per-layer pricing must diverge
  (strictly, on a pinned trace) — that layer's all-to-all is now priced
  against a placement the broadcast path never sees.
"""

import numpy as np
import pytest

from repro.balancer import GreedyBalancer, NoBalancer, NonInvasiveBalancer
from repro.engine import EngineConfig, ServingConfig, ServingSimulator
from repro.models import QWEN3_235B
from repro.systems import build_wsc
from repro.workload import AzureLikeMixer, CHAT, CODING, MATH, PRIVACY, GatingSimulator


def make_simulator(
    balancer_cls,
    per_layer_alltoall,
    num_layers=6,
    iterations=40,
    seed=17,
    stacked=None,
    **serving_kwargs,
):
    system = build_wsc(QWEN3_235B, side=4, tp=4, mapping="er")
    workload = GatingSimulator(
        QWEN3_235B,
        num_groups=system.mapping.dp,
        tokens_per_group=64,
        mixer=AzureLikeMixer([CHAT, CODING, MATH, PRIVACY], period_iters=30),
        num_layers=num_layers,
        seed=seed,
    )
    return ServingSimulator(
        system.device,
        QWEN3_235B,
        system.mapping,
        workload,
        balancer_cls,
        engine_config=EngineConfig(tokens_per_group=64),
        serving_config=ServingConfig.from_flat(
            num_iterations=iterations,
            per_layer_alltoall=per_layer_alltoall,
            per_layer_demand=False,
            **serving_kwargs,
        ),
        stacked=stacked,
    )


def assert_bit_identical(trace_a, trace_b):
    assert len(trace_a.records) == len(trace_b.records)
    for ours, ref in zip(trace_a.records, trace_b.records):
        assert ours.latency == ref.latency, f"iter {ref.iteration}"
        assert ours.alltoall_mean == ref.alltoall_mean, f"iter {ref.iteration}"
        assert ours.migration_exposed == ref.migration_exposed
        assert ours.migrations_started == ref.migrations_started
        assert ours.migrations_completed == ref.migrations_completed
        assert ours.max_device_load == ref.max_device_load


class TestPreMigrationOracle:
    def test_no_balancer_bit_identical(self):
        """Without migrations every layer keeps layer 0's content, so
        per-layer pricing must reduce to the broadcast exactly."""
        assert_bit_identical(
            make_simulator(NoBalancer, per_layer_alltoall=True).run(),
            make_simulator(NoBalancer, per_layer_alltoall=False).run(),
        )

    def test_warmup_prefix_bit_identical_under_migrations(self):
        """Before the first trigger fires the paths must agree bitwise even
        for a migrating balancer."""
        warm = 15
        with_pricing = make_simulator(
            GreedyBalancer, per_layer_alltoall=True, warmup_iters=warm
        ).run()
        broadcast = make_simulator(
            GreedyBalancer, per_layer_alltoall=False, warmup_iters=warm
        ).run()
        for ours, ref in zip(
            with_pricing.records[:warm], broadcast.records[:warm]
        ):
            assert ours.latency == ref.latency
            assert ours.alltoall_mean == ref.alltoall_mean

    def test_alltoall_mean_equals_layer0_while_uniform(self):
        trace = make_simulator(NoBalancer, per_layer_alltoall=True).run()
        for record in trace.records:
            assert record.alltoall_mean == record.breakdown.alltoall


class TestPostMigrationDivergence:
    @pytest.mark.parametrize("balancer_cls", [GreedyBalancer, NonInvasiveBalancer])
    def test_pinned_migrating_trace_diverges_strictly(self, balancer_cls):
        with_pricing = make_simulator(balancer_cls, per_layer_alltoall=True).run()
        broadcast = make_simulator(balancer_cls, per_layer_alltoall=False).run()
        assert with_pricing.num_migrations() > 0
        assert broadcast.num_migrations() > 0
        if balancer_cls is GreedyBalancer:
            # Invasive planning never reads the a2a price, so the decision
            # sequence is identical.  (Non-invasive draining *does* consume
            # the priced a2a window as its migration budget, so its
            # commit timing may legitimately shift between pricing modes.)
            assert with_pricing.num_migrations() == broadcast.num_migrations()
        # Strictly different latencies once layers diverge.
        diffs = [
            ours.latency != ref.latency
            for ours, ref in zip(with_pricing.records, broadcast.records)
        ]
        assert any(diffs)
        diverged = [
            record
            for record in with_pricing.records
            if record.alltoall_mean != record.breakdown.alltoall
        ]
        assert diverged

    def test_forced_migration_on_later_layer_only(self):
        """A replica forced onto layer 3 must change per-layer pricing while
        the broadcast path (layer 0 untouched) cannot see it."""

        def run_forced(per_layer):
            simulator = make_simulator(
                NoBalancer, per_layer_alltoall=per_layer, iterations=5
            )
            simulator.engine.placement.add_replica(3, expert=0, device=15)
            return simulator.run()

        forced = run_forced(True)
        blind = run_forced(False)
        # Layer 0's exactly-simulated collectives are identical in both...
        for ours, ref in zip(forced.records, blind.records):
            assert ours.breakdown.alltoall == ref.breakdown.alltoall
        # ...but the per-layer path prices layer 3's replica in.  Durations
        # are max-based (bottleneck link + worst path), so an individual
        # iteration may legitimately price the same; the pinned trace as a
        # whole must diverge on most iterations.
        mean_diffs = sum(
            record.alltoall_mean != record.breakdown.alltoall
            for record in forced.records
        )
        latency_diffs = sum(
            ours.latency != ref.latency
            for ours, ref in zip(forced.records, blind.records)
        )
        assert mean_diffs >= len(forced.records) - 1 > 0
        assert latency_diffs >= len(forced.records) - 1 > 0

    def test_forced_migration_per_layer_engine_matches_stacked(self):
        """Both engines share the layered pricing path bitwise."""

        def run_engine(stacked):
            simulator = make_simulator(
                NoBalancer,
                per_layer_alltoall=True,
                iterations=5,
                stacked=stacked,
            )
            if stacked:
                simulator.engine.placement.add_replica(3, expert=0, device=15)
            else:
                simulator.balancers[3].placement.add_replica(0, 15)
            return simulator.run()

        assert_bit_identical(run_engine(True), run_engine(False))


class TestFlagOff:
    def test_flag_off_restores_broadcast_semantics(self):
        trace = make_simulator(GreedyBalancer, per_layer_alltoall=False).run()
        assert trace.num_migrations() > 0
        for record in trace.records:
            assert record.alltoall_mean == record.breakdown.alltoall
        assert trace.mean_component("alltoall") == trace.mean_component(
            "alltoall_layer0"
        )
