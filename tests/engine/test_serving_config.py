"""The grouped ServingConfig and its flat-kwarg compatibility path.

The pre-grouping API (``ServingConfig(alpha=..., per_layer_demand=...)``)
must keep working behind a DeprecationWarning, forwarding every flat kwarg
onto the sub-config that owns it, and the flat attribute names must stay
readable (silently) so downstream inspection code does not churn.
"""

import warnings
from dataclasses import replace

import pytest

from repro.engine import BalancingConfig, PricingConfig, ServingConfig


class TestGroupedConstruction:
    def test_defaults_match_sub_config_defaults(self):
        config = ServingConfig()
        assert config.num_iterations == 150
        assert config.balancing == BalancingConfig()
        assert config.pricing == PricingConfig()

    def test_grouped_kwargs(self):
        config = ServingConfig(
            num_iterations=7,
            balancing=BalancingConfig(alpha=0.25, shadow_slots=3),
            pricing=PricingConfig(record_broadcast_price=True),
        )
        assert config.balancing.alpha == 0.25
        assert config.balancing.shadow_slots == 3
        assert config.pricing.record_broadcast_price is True

    def test_grouped_construction_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            ServingConfig(
                num_iterations=3,
                balancing=BalancingConfig(beta_iters=0),
                pricing=PricingConfig(sparse_pricing=True),
            )

    def test_replace_works_on_grouped_fields(self):
        config = ServingConfig(num_iterations=9)
        bumped = replace(config, num_iterations=11)
        assert bumped.num_iterations == 11
        assert bumped.balancing == config.balancing
        rebal = replace(config, balancing=BalancingConfig(alpha=0.1))
        assert rebal.balancing.alpha == 0.1

    def test_equality_and_hashability(self):
        assert ServingConfig() == ServingConfig()
        # Frozen all the way down: usable as a dict/set key.
        assert ServingConfig() in {ServingConfig()}
        assert ServingConfig(num_iterations=2) != ServingConfig()


class TestLegacyFlatKwargs:
    def test_flat_kwargs_warn_and_forward(self):
        with pytest.deprecated_call(match="flat ServingConfig kwargs"):
            config = ServingConfig(
                num_iterations=5,
                alpha=0.125,
                beta_iters=2,
                migration_side_channel=True,
                per_layer_demand=False,
                sparse_pricing=False,
            )
        assert config.num_iterations == 5
        assert config.balancing.alpha == 0.125
        assert config.balancing.beta_iters == 2
        assert config.balancing.migration_side_channel is True
        assert config.pricing.per_layer_demand is False
        assert config.pricing.sparse_pricing is False

    def test_flat_kwargs_overlay_given_sub_configs(self):
        with pytest.deprecated_call():
            config = ServingConfig(
                balancing=BalancingConfig(alpha=0.25, warmup_iters=9),
                shadow_slots=4,
            )
        # The flat kwarg lands on top of the provided sub-config.
        assert config.balancing.shadow_slots == 4
        assert config.balancing.alpha == 0.25
        assert config.balancing.warmup_iters == 9

    def test_flat_attribute_reads_stay_silent(self):
        config = ServingConfig(
            balancing=BalancingConfig(alpha=0.3),
            pricing=PricingConfig(record_broadcast_price=True),
        )
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert config.alpha == 0.3
            assert config.beta_iters == config.balancing.beta_iters
            assert config.warmup_iters == config.balancing.warmup_iters
            assert config.shadow_slots == config.balancing.shadow_slots
            assert config.migration_side_channel is False
            assert config.per_layer_alltoall is True
            assert config.per_layer_demand is True
            assert config.record_broadcast_price is True
            assert config.sparse_pricing is None

    def test_flat_aliases_are_read_only(self):
        config = ServingConfig()
        with pytest.raises(AttributeError):
            config.alpha = 0.9

    def test_unknown_kwarg_raises_type_error(self):
        with pytest.raises(TypeError, match="unexpected keyword"):
            ServingConfig(sampler="multinomial")

    def test_flat_validation_still_raises(self):
        with pytest.raises(ValueError):
            ServingConfig(alpha=-1.0)

    def test_replace_accepts_flat_names_via_legacy_path(self):
        config = ServingConfig(num_iterations=4)
        with pytest.deprecated_call():
            bumped = replace(config, alpha=0.75)
        assert bumped.balancing.alpha == 0.75
        assert bumped.num_iterations == 4


class TestFromFlat:
    def test_from_flat_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            config = ServingConfig.from_flat(
                num_iterations=6, alpha=0.5, per_layer_demand=False
            )
        assert config.num_iterations == 6
        assert config.pricing.per_layer_demand is False

    def test_from_flat_equals_deprecated_path(self):
        with pytest.deprecated_call():
            legacy = ServingConfig(alpha=0.2, shadow_slots=2, sparse_pricing=True)
        assert legacy == ServingConfig.from_flat(
            alpha=0.2, shadow_slots=2, sparse_pricing=True
        )

    def test_from_flat_rejects_unknown_names(self):
        with pytest.raises(TypeError, match="unexpected keyword"):
            ServingConfig.from_flat(group_split="gaussian")
