"""Demand-resolved per-layer pricing: contracts with the PR 4 oracle.

``ServingConfig.per_layer_demand`` resolves group-level gating demand for
every layer and prices each layer's all-to-all against its own demand
rows.  Its contracts:

* with ``per_layer_demand=False`` the serving trace is *bit-identical* to
  the PR 4 demand-broadcast output — pinned below against literal trace
  fingerprints captured from the PR 4 tree;
* under resolved demand, per-layer prices diverge from the layer-0 price
  from the very first iteration (each layer's demand rows differ even on
  an identical placement stack);
* a demand skew forced onto a later layer strictly changes that layer's
  price while leaving every other layer's price untouched;
* both engines (stacked and per-layer oracle) price the resolved path
  bitwise identically.
"""

import numpy as np
import pytest

from repro.balancer import GreedyBalancer, NoBalancer, NonInvasiveBalancer
from repro.engine import EngineConfig, ServingConfig, ServingSimulator
from repro.models import QWEN3_235B
from repro.systems import build_wsc
from repro.workload import AzureLikeMixer, CHAT, CODING, MATH, PRIVACY, GatingSimulator


def make_simulator(
    balancer_cls,
    num_layers=6,
    iterations=40,
    seed=17,
    stacked=None,
    group_split="gaussian",
    **serving_kwargs,
):
    system = build_wsc(QWEN3_235B, side=4, tp=4, mapping="er")
    workload = GatingSimulator(
        QWEN3_235B,
        num_groups=system.mapping.dp,
        tokens_per_group=64,
        mixer=AzureLikeMixer([CHAT, CODING, MATH, PRIVACY], period_iters=30),
        num_layers=num_layers,
        seed=seed,
        group_split=group_split,
    )
    return ServingSimulator(
        system.device,
        QWEN3_235B,
        system.mapping,
        workload,
        balancer_cls,
        engine_config=EngineConfig(tokens_per_group=64),
        serving_config=ServingConfig.from_flat(num_iterations=iterations, **serving_kwargs),
        stacked=stacked,
    )


class TestPinnedBroadcastOracle:
    """PR 4's exact trace survives behind per_layer_demand=False."""

    #: (latency sum, migrations, iteration-0/10/20/39 latencies) captured
    #: from the PR 4 tree (commit e3f4d71) under its then-default config.
    PINNED = {
        GreedyBalancer: (
            0.178620372397184,
            94,
            {
                0: 0.004140202135893334,
                10: 0.0043664174684160005,
                20: 0.004377419015850667,
                39: 0.004376152286890666,
            },
        ),
        NonInvasiveBalancer: (
            0.17367238252771555,
            118,
            {
                0: 0.004140202135893334,
                10: 0.004365264321536,
                20: 0.004383201391843556,
                39: 0.004370877543651555,
            },
        ),
    }

    @pytest.mark.parametrize("balancer_cls", [GreedyBalancer, NonInvasiveBalancer])
    def test_flag_off_bit_identical_to_pr4(self, balancer_cls):
        # The fingerprints were captured bit-exactly on the PR 4 tree; the
        # comparison allows ~1 ulp (rel=1e-15 on sums of ~40 terms) so the
        # pin survives BLAS builds whose dgemm reduction order differs from
        # the capture machine's (the CI matrix spans numpy 1.26/latest).
        # Any semantic change to the pinned path lands orders of magnitude
        # outside that tolerance; migrations stay exactly equal.
        trace = make_simulator(balancer_cls, per_layer_demand=False).run()
        total, migrations, spot = self.PINNED[balancer_cls]
        assert float(np.sum([r.latency for r in trace.records])) == pytest.approx(
            total, rel=1e-13, abs=0.0
        )
        assert trace.num_migrations() == migrations
        for iteration, latency in spot.items():
            assert trace.records[iteration].latency == pytest.approx(
                latency, rel=1e-13, abs=0.0
            )

    def test_flag_off_broadcast_component_equals_mean(self):
        trace = make_simulator(GreedyBalancer, per_layer_demand=False).run()
        for record in trace.records:
            assert record.alltoall_broadcast == record.alltoall_mean


class TestResolvedBehavior:
    def test_resolved_prices_diverge_from_layer0_immediately(self):
        """Even a uniform placement stack prices every layer differently
        once each layer carries its own demand rows."""
        trace = make_simulator(NoBalancer, iterations=5).run()
        for record in trace.records:
            assert record.alltoall_mean != record.breakdown.alltoall

    def test_resolved_trace_differs_from_broadcast(self):
        resolved = make_simulator(GreedyBalancer).run()
        broadcast = make_simulator(GreedyBalancer, per_layer_demand=False).run()
        diffs = [
            ours.latency != ref.latency
            for ours, ref in zip(resolved.records, broadcast.records)
        ]
        assert sum(diffs) >= len(diffs) - 1

    @pytest.mark.parametrize("group_split", ["gaussian", "multinomial"])
    def test_engines_match_bitwise(self, group_split):
        """Stacked and per-layer engines share the resolved pricing path
        (zero-copy share view vs per-epoch stack) bitwise."""

        def run_engine(stacked):
            simulator = make_simulator(
                NoBalancer,
                iterations=5,
                stacked=stacked,
                group_split=group_split,
            )
            if stacked:
                simulator.engine.placement.add_replica(3, expert=0, device=15)
            else:
                simulator.balancers[3].placement.add_replica(0, 15)
            return simulator.run()

        stacked_trace = run_engine(True)
        oracle_trace = run_engine(False)
        for ours, ref in zip(stacked_trace.records, oracle_trace.records):
            assert ours.latency == ref.latency
            assert ours.alltoall_mean == ref.alltoall_mean

    def test_single_layer_falls_back_to_broadcast_path(self):
        """With one simulated layer there is nothing to resolve; the run
        must consume the exact next_loads stream of the broadcast path."""
        resolved = make_simulator(NoBalancer, num_layers=1, iterations=8).run()
        broadcast = make_simulator(
            NoBalancer, num_layers=1, iterations=8, per_layer_demand=False
        ).run()
        for ours, ref in zip(resolved.records, broadcast.records):
            assert ours.latency == ref.latency

    def test_per_layer_alltoall_off_disables_resolution(self):
        """per_layer_demand only takes effect with per-layer pricing on —
        the layer-0-broadcast oracle keeps its exact stream either way.
        The inert combination warns loudly (ServingConfig.__post_init__)
        but still runs identically to the explicit broadcast config."""
        with pytest.warns(UserWarning, match="per_layer_demand.*inert"):
            a = make_simulator(GreedyBalancer, per_layer_alltoall=False).run()
        b = make_simulator(
            GreedyBalancer, per_layer_alltoall=False, per_layer_demand=False
        ).run()
        for ours, ref in zip(a.records, b.records):
            assert ours.latency == ref.latency
            assert ours.alltoall_mean == ref.breakdown.alltoall


class TestBroadcastCompanion:
    def test_companion_nan_unless_requested(self):
        trace = make_simulator(NoBalancer, iterations=3).run()
        assert all(np.isnan(r.alltoall_broadcast) for r in trace.records)

    def test_companion_recorded_when_requested(self):
        trace = make_simulator(
            GreedyBalancer, record_broadcast_price=True
        ).run()
        assert not any(np.isnan(r.alltoall_broadcast) for r in trace.records)
        # While the placement stack is uniform the companion reduces to
        # layer 0's exact price.
        first = trace.records[0]
        assert first.alltoall_broadcast == first.breakdown.alltoall
        # Once migrations diverge placements, the companion prices them.
        assert any(
            r.alltoall_broadcast != r.breakdown.alltoall for r in trace.records
        )
        # And the components stay distinguishable through the trace API.
        assert trace.mean_component("alltoall") != trace.mean_component(
            "alltoall_broadcast"
        )

    def test_companion_matches_broadcast_run_while_streams_align(self):
        """On a migration-free stack the companion equals what a broadcast
        run would report for the same placements — layer 0's price — even
        though the RNG streams differ."""
        trace = make_simulator(
            NoBalancer, record_broadcast_price=True, iterations=5
        ).run()
        for record in trace.records:
            assert record.alltoall_broadcast == record.breakdown.alltoall
