"""Tests for the roofline compute model."""

import numpy as np
import pytest

from repro.engine.compute import ComputeModel, RooflineTimes
from repro.hardware.device import B200
from repro.mapping.placement import ExpertPlacement
from repro.models import DEEPSEEK_V3, QWEN3_235B


@pytest.fixture
def model():
    return ComputeModel(B200, DEEPSEEK_V3)


class TestRooflineTimes:
    def test_total_is_sum(self):
        times = RooflineTimes(compute=2.0, memory=3.0)
        assert times.total == 5.0

    def test_memory_fraction(self):
        times = RooflineTimes(compute=1.0, memory=3.0)
        assert times.memory_fraction == pytest.approx(0.75)

    def test_zero_total_fraction(self):
        assert RooflineTimes(0.0, 0.0).memory_fraction == 0.0


class TestAttention:
    def test_decode_memory_grows_with_context(self, model):
        short = model.attention_time(64, context_len=1024, tp=4)
        long = model.attention_time(64, context_len=8192, tp=4)
        assert long.memory > short.memory

    def test_tp_splits_work(self, model):
        tp1 = model.attention_time(64, 4096, tp=1)
        tp4 = model.attention_time(64, 4096, tp=4)
        assert tp4.compute == pytest.approx(tp1.compute / 4)

    def test_decode_memory_bound(self, model):
        """Decode attention with long context is dominated by KV reads."""
        times = model.attention_time(16, context_len=16384, tp=4, decode=True)
        assert times.memory_fraction > 0.5

    def test_prefill_less_memory_bound_than_decode(self, model):
        decode = model.attention_time(256, 4096, tp=4, decode=True)
        prefill = model.attention_time(256, 4096, tp=4, decode=False)
        assert prefill.memory < decode.memory

    def test_rejects_bad_args(self, model):
        with pytest.raises(ValueError):
            model.attention_time(0, 4096, tp=4)
        with pytest.raises(ValueError):
            model.attention_time(64, -1, tp=4)


class TestMoE:
    def test_balanced_load_uniform_times(self, model):
        placement = ExpertPlacement(256, 256)
        loads = np.full(256, 8.0)
        times = model.moe_device_times(loads, placement)
        totals = [t.total for t in times]
        assert max(totals) == pytest.approx(min(totals))

    def test_hot_expert_creates_peak(self, model):
        placement = ExpertPlacement(256, 256)
        loads = np.full(256, 8.0)
        loads[3] = 800.0
        peak = model.moe_peak_time(loads, placement)
        balanced = model.moe_peak_time(np.full(256, 8.0), placement)
        assert peak.total > balanced.total

    def test_replication_splits_tokens(self, model):
        placement = ExpertPlacement(256, 256, shadow_slots=1)
        loads = np.zeros(256)
        loads[0] = 100.0
        before = model.moe_peak_time(loads, placement)
        placement.add_replica(0, 128)
        after = model.moe_peak_time(loads, placement)
        assert after.compute == pytest.approx(before.compute / 2)

    def test_memory_counts_activated_experts_once(self, model):
        placement = ExpertPlacement(256, 64)  # 4 experts per device
        loads = np.full(256, 1.0)
        times = model.moe_device_times(loads, placement)
        expected = 4 * DEEPSEEK_V3.expert_bytes / B200.hbm_bandwidth
        assert times[0].memory == pytest.approx(expected)

    def test_memory_fraction_falls_with_ep(self, model):
        """Fig. 4: growing EP cuts the per-device memory-access share."""
        fractions = []
        for num_devices in (32, 64, 128, 256):
            placement = ExpertPlacement(256, num_devices)
            tokens_per_device = 64
            loads = np.full(256, tokens_per_device * num_devices * 8 / 256)
            peak = model.moe_peak_time(loads, placement)
            fractions.append(peak.memory_fraction)
        assert fractions == sorted(fractions, reverse=True)

    def test_shape_validated(self, model):
        placement = ExpertPlacement(256, 16)
        with pytest.raises(ValueError):
            model.moe_device_times(np.zeros(8), placement)

    def test_idle_expert_no_memory_charge(self, model):
        placement = ExpertPlacement(256, 256)
        loads = np.zeros(256)
        loads[0] = 10.0
        times = model.moe_device_times(loads, placement)
        assert times[1].memory == 0.0
        assert times[1].compute == 0.0
