"""Sparse pricing in the serving loop: parity, auto selection, zero rebuilds.

``ServingConfig(sparse_pricing=...)`` selects which all-to-all operator
backs the layered plan.  The contracts:

* sparse and dense traces agree to ~1e-12 relative latency (the pricers
  sum identical terms in different associative orders) with *identical*
  migration decisions, across all four balancer strategies at full model
  depth (58 sparse layers);
* migration-free iterations perform zero operator rebuilds — the sparse
  pricer's ``state_rebuilds`` counter stays flat once the stack's states
  exist;
* the default ``sparse_pricing=None`` resolves through the
  dense-operator-footprint auto rule and explicit ``True``/``False``
  force their tier.
"""

import numpy as np
import pytest

from repro.balancer import (
    GreedyBalancer,
    NoBalancer,
    NonInvasiveBalancer,
    TopologyAwareBalancer,
)
from repro.engine import EngineConfig, ServingConfig, ServingSimulator
from repro.models import QWEN3_235B
from repro.network.alltoall import prefer_sparse_pricing, sparse_alltoall_pricer
from repro.systems import build_wsc
from repro.workload import (
    AzureLikeMixer,
    CHAT,
    CODING,
    MATH,
    PRIVACY,
    GatingSimulator,
)

ALL_STRATEGIES = [
    NoBalancer,
    GreedyBalancer,
    TopologyAwareBalancer,
    NonInvasiveBalancer,
]


def make_simulator(
    balancer_cls,
    num_layers=58,
    iterations=10,
    seed=17,
    **serving_kwargs,
):
    system = build_wsc(QWEN3_235B, side=4, tp=4, mapping="er")
    workload = GatingSimulator(
        QWEN3_235B,
        num_groups=system.mapping.dp,
        tokens_per_group=64,
        mixer=AzureLikeMixer([CHAT, CODING, MATH, PRIVACY], period_iters=30),
        num_layers=num_layers,
        seed=seed,
    )
    return ServingSimulator(
        system.device,
        QWEN3_235B,
        system.mapping,
        workload,
        balancer_cls,
        engine_config=EngineConfig(tokens_per_group=64),
        serving_config=ServingConfig.from_flat(
            num_iterations=iterations, warmup_iters=3, **serving_kwargs
        ),
    )


class TestSparseDenseParity:
    """Acceptance: sparse matches the dense oracle across all four
    balancer strategies at 58 layers."""

    @pytest.mark.parametrize("balancer_cls", ALL_STRATEGIES)
    def test_trace_matches_dense_at_full_depth(self, balancer_cls):
        dense = make_simulator(balancer_cls, sparse_pricing=False).run()
        sparse = make_simulator(balancer_cls, sparse_pricing=True).run()
        assert sparse.num_migrations() == dense.num_migrations()
        for got, want in zip(sparse.records, dense.records):
            assert got.latency == pytest.approx(want.latency, rel=1e-12, abs=0.0)
            assert got.alltoall_mean == pytest.approx(
                want.alltoall_mean, rel=1e-12, abs=0.0
            )

    def test_broadcast_demand_path_matches_too(self):
        dense = make_simulator(
            GreedyBalancer, num_layers=12, per_layer_demand=False,
            sparse_pricing=False,
        ).run()
        sparse = make_simulator(
            GreedyBalancer, num_layers=12, per_layer_demand=False,
            sparse_pricing=True,
        ).run()
        assert sparse.num_migrations() == dense.num_migrations()
        for got, want in zip(sparse.records, dense.records):
            assert got.latency == pytest.approx(want.latency, rel=1e-12, abs=0.0)


class TestZeroRebuilds:
    def test_migration_free_iterations_rebuild_nothing(self):
        """After the first priced iteration builds the stack's states, a
        migration-free run never touches the rebuild counter again."""
        sim = make_simulator(NoBalancer, num_layers=8, sparse_pricing=True)
        pricer = sparse_alltoall_pricer(sim.mapping)
        sim.run()
        built = pricer.state_rebuilds
        # One state per priced layer (layers past the first), built once.
        assert built == 7
        make_more = make_simulator(NoBalancer, num_layers=8, sparse_pricing=True)
        del make_more  # (fresh simulators share the mapping-cached pricer)
        sim.serving_config = ServingConfig.from_flat(
            num_iterations=5, warmup_iters=3, sparse_pricing=True
        )
        sim.run()
        assert pricer.state_rebuilds == built

    def test_migrations_rebuild_a_bounded_number_of_states(self):
        sim = make_simulator(GreedyBalancer, num_layers=8, sparse_pricing=True)
        pricer = sparse_alltoall_pricer(sim.mapping)
        trace = sim.run()
        assert trace.num_migrations() > 0
        # Every rebuild is one layer state: the initial 7 plus at most one
        # per (mutated layer, migration epoch) — far below a per-iteration
        # full rebuild of the 7-layer stack.
        iterations = sim.serving_config.num_iterations
        assert pricer.state_rebuilds < 7 * iterations

    def test_rebuild_counter_visible_through_the_plan(self):
        sim = make_simulator(NoBalancer, num_layers=4, sparse_pricing=True)
        sim.run()
        pricer = sparse_alltoall_pricer(sim.mapping)
        assert pricer.state_rebuilds > 0
        assert pricer.operator_nbytes() > 0


class TestModeSelection:
    def test_forced_modes_respected(self):
        assert make_simulator(NoBalancer, num_layers=2, sparse_pricing=True
                              ).sparse_pricing is True
        assert make_simulator(NoBalancer, num_layers=2, sparse_pricing=False
                              ).sparse_pricing is False

    def test_auto_follows_operator_footprint(self):
        sim = make_simulator(NoBalancer, num_layers=2)
        assert sim.serving_config.pricing.sparse_pricing is None
        assert sim.sparse_pricing == prefer_sparse_pricing(sim.mapping)
        # A 16-device wafer prices a tiny dense operator: auto stays dense.
        assert sim.sparse_pricing is False
