"""Stacked-engine oracle regression: bit-identical to per-layer balancers.

The layer-stacked engine (StackedPlacement + StackedBalancer) replaces the
per-layer ``Balancer`` list in the serving loop.  These tests run the same
serving configuration through both engines — the per-layer path is the
seed implementation, kept verbatim behind ``stacked=False`` — and assert
the traces agree *bitwise*: latency, device-load stats (hence load_ratio),
migration counts, exposed migration latency, and the workload RNG stream.
Any floating-point drift in heats, eviction or planning would flip a
migration decision somewhere in 80 iterations and show up here.
"""

import numpy as np
import pytest

from repro.balancer import (
    GreedyBalancer,
    NoBalancer,
    NonInvasiveBalancer,
    TopologyAwareBalancer,
)
from repro.engine import EngineConfig, ServingConfig, ServingSimulator
from repro.models import QWEN3_235B
from repro.systems import build_wsc
from repro.workload import AzureLikeMixer, CHAT, CODING, MATH, PRIVACY, GatingSimulator

STRATEGIES = {
    "none": NoBalancer,
    "greedy": GreedyBalancer,
    "topology": TopologyAwareBalancer,
    "non_invasive": NonInvasiveBalancer,
}


def make_simulator(
    balancer_cls,
    stacked,
    num_layers=6,
    iterations=80,
    seed=17,
    side=4,
    balancer_config=None,
    **serving_kwargs,
):
    system = build_wsc(QWEN3_235B, side=side, tp=4, mapping="er")
    workload = GatingSimulator(
        QWEN3_235B,
        num_groups=system.mapping.dp,
        tokens_per_group=64,
        mixer=AzureLikeMixer([CHAT, CODING, MATH, PRIVACY], period_iters=30),
        num_layers=num_layers,
        seed=seed,
    )
    return ServingSimulator(
        system.device,
        QWEN3_235B,
        system.mapping,
        workload,
        balancer_cls,
        engine_config=EngineConfig(tokens_per_group=64),
        serving_config=ServingConfig.from_flat(num_iterations=iterations, **serving_kwargs),
        balancer_config=balancer_config,
        stacked=stacked,
    )


def assert_traces_identical(stacked_sim, per_layer_sim):
    stacked_trace = stacked_sim.run()
    oracle_trace = per_layer_sim.run()
    assert len(stacked_trace.records) == len(oracle_trace.records)
    for ours, ref in zip(stacked_trace.records, oracle_trace.records):
        assert ours.iteration == ref.iteration
        assert ours.latency == ref.latency, f"iter {ref.iteration}"
        assert ours.alltoall_mean == ref.alltoall_mean, f"iter {ref.iteration}"
        assert ours.max_device_load == ref.max_device_load, f"iter {ref.iteration}"
        assert ours.mean_device_load == ref.mean_device_load, f"iter {ref.iteration}"
        assert ours.migration_exposed == ref.migration_exposed, f"iter {ref.iteration}"
        assert ours.migrations_started == ref.migrations_started, f"iter {ref.iteration}"
        assert ours.migrations_completed == ref.migrations_completed
        assert ours.triggered == ref.triggered
    # The gating RNG must have been consumed identically.
    assert (
        stacked_sim.workload._rng.bit_generator.state
        == per_layer_sim.workload._rng.bit_generator.state
    )
    # Final placements match layer by layer (replica sets and shares).
    for layer in range(stacked_sim.num_layers):
        ours = stacked_sim.layer_placement(layer)
        ref = per_layer_sim.layer_placement(layer)
        for expert in range(ours.num_experts):
            assert ours.replicas(expert) == ref.replicas(expert), (layer, expert)
        np.testing.assert_array_equal(
            ours.destination_shares, ref.destination_shares
        )
    stacked_sim.engine.placement.check_synced()


@pytest.mark.parametrize("strategy", list(STRATEGIES))
def test_stacked_matches_per_layer(strategy):
    cls = STRATEGIES[strategy]
    assert_traces_identical(
        make_simulator(cls, stacked=True), make_simulator(cls, stacked=False)
    )


@pytest.mark.parametrize("strategy", ["greedy", "topology"])
def test_stacked_matches_per_layer_side_channel(strategy):
    """Invasive draining through the side channel (fig17's NVL72 config)."""
    cls = STRATEGIES[strategy]
    kwargs = dict(migration_side_channel=True, shadow_slots=2, beta_iters=3)
    assert_traces_identical(
        make_simulator(cls, stacked=True, **kwargs),
        make_simulator(cls, stacked=False, **kwargs),
    )


@pytest.mark.parametrize("strategy", ["greedy", "non_invasive"])
def test_stacked_matches_per_layer_aggressive_plans(strategy):
    """fig17's large-plan config: 16 migrations per trigger + eviction."""
    from repro.balancer import BalancerConfig

    def build(stacked):
        return make_simulator(
            STRATEGIES[strategy],
            stacked=stacked,
            num_layers=4,
            iterations=60,
            warmup_iters=2,
            shadow_slots=2,
            balancer_config=BalancerConfig(max_migrations_per_trigger=16),
        )

    assert_traces_identical(build(True), build(False))


def test_stacked_matches_at_depth():
    """A deeper stack (the whole point) still matches the oracle."""
    assert_traces_identical(
        make_simulator(NonInvasiveBalancer, stacked=True, num_layers=12, iterations=40),
        make_simulator(NonInvasiveBalancer, stacked=False, num_layers=12, iterations=40),
    )


def test_stacked_rejects_unknown_balancer():
    class CustomBalancer(GreedyBalancer):
        pass

    with pytest.raises(ValueError, match="stacked"):
        make_simulator(CustomBalancer, stacked=True, iterations=2)
    # Auto mode silently falls back to the per-layer engine.
    simulator = make_simulator(CustomBalancer, stacked=None, iterations=2)
    assert not simulator.stacked
    assert len(simulator.balancers) == simulator.num_layers
