"""Regression tests: vectorized hot paths match the original loop semantics.

The seed implementations of ``Balancer.heats``, ``device_token_loads``,
``ComputeModel.moe_device_times`` and the serving engine's device-load
stats were pure-Python loops over experts and replicas.  This PR replaced
them with matrix products over the placement's incrementally-maintained
replica matrix; these tests re-state the original loops verbatim and check
the vectorized versions agree on randomized placements, loads, and pending
sets.
"""

import numpy as np
import pytest

from repro.analysis.load import device_token_loads
from repro.balancer.base import BalancerConfig
from repro.balancer.none import NoBalancer
from repro.engine.compute import ComputeModel
from repro.hardware.device import B200
from repro.mapping.placement import ExpertPlacement
from repro.models import QWEN3_235B
from repro.topology.mesh import MeshTopology

NUM_EXPERTS = 24
NUM_DEVICES = 16


def random_placement(rng, shadow_slots=2, fill=0.5):
    placement = ExpertPlacement(NUM_EXPERTS, NUM_DEVICES, shadow_slots=shadow_slots)
    for device in range(NUM_DEVICES):
        for _ in range(shadow_slots):
            if rng.random() > fill:
                continue
            expert = int(rng.integers(NUM_EXPERTS))
            if not placement.hosts(device, expert):
                placement.add_replica(expert, device)
    return placement


def make_balancer(placement, rng, num_pending=3):
    balancer = NoBalancer(
        placement, MeshTopology(4, 4), expert_bytes=1e6, config=BalancerConfig()
    )
    balancer.observe(rng.uniform(0.0, 100.0, NUM_EXPERTS))
    while len(balancer.pending) < num_pending:
        expert = int(rng.integers(NUM_EXPERTS))
        dst = int(rng.integers(NUM_DEVICES))
        balancer.pending.add((expert, dst))
    return balancer


def loop_heats(balancer, include_pending):
    """The seed implementation of Balancer.heats, verbatim."""
    placement = balancer.placement
    num_replicas = np.array(
        [placement.num_replicas(e) for e in range(placement.num_experts)],
        dtype=float,
    )
    if include_pending:
        for expert, _dst in balancer.pending:
            num_replicas[expert] += 1
    per_replica = np.divide(
        balancer.predicted_loads,
        num_replicas,
        out=np.zeros_like(balancer.predicted_loads),
        where=num_replicas > 0,
    )
    heats = np.zeros(placement.num_devices)
    for expert in range(placement.num_experts):
        for device in placement.replicas(expert):
            heats[device] += per_replica[expert]
        if include_pending:
            for pending_expert, dst in balancer.pending:
                if pending_expert == expert:
                    heats[dst] += per_replica[expert]
    return heats


def loop_device_token_loads(expert_loads, placement):
    """The seed implementation of device_token_loads, verbatim."""
    loads = np.asarray(expert_loads, dtype=float)
    device_loads = np.zeros(placement.num_devices)
    for expert in range(placement.num_experts):
        if loads[expert] <= 0:
            continue
        replicas = placement.replicas(expert)
        share = loads[expert] / len(replicas)
        for device in replicas:
            device_loads[device] += share
    return device_loads


def loop_moe_device_totals(model, device, expert_loads, placement):
    """The seed implementation of moe_device_times, reduced to totals."""
    loads = np.asarray(expert_loads, dtype=float)
    token_flops = model.expert_flops_per_token
    expert_bytes = model.expert_bytes
    device_tokens = np.zeros(placement.num_devices)
    device_active = np.zeros(placement.num_devices, dtype=int)
    for expert in range(placement.num_experts):
        if loads[expert] <= 0:
            continue
        replicas = placement.replicas(expert)
        share = loads[expert] / len(replicas)
        for dev in replicas:
            device_tokens[dev] += share
            device_active[dev] += 1
    compute = device_tokens * token_flops / device.int8_ops
    memory = device_active * expert_bytes / device.hbm_bandwidth
    return compute + memory


@pytest.mark.parametrize("seed", range(5))
class TestVectorizedEquivalence:
    def test_heats_matches_loop(self, seed):
        rng = np.random.default_rng(seed)
        balancer = make_balancer(random_placement(rng), rng)
        for include_pending in (False, True):
            np.testing.assert_allclose(
                balancer.heats(include_pending=include_pending),
                loop_heats(balancer, include_pending),
                rtol=1e-12,
            )

    def test_device_token_loads_matches_loop(self, seed):
        rng = np.random.default_rng(seed)
        placement = random_placement(rng)
        loads = rng.uniform(0.0, 50.0, NUM_EXPERTS)
        loads[rng.integers(NUM_EXPERTS)] = 0.0
        np.testing.assert_allclose(
            device_token_loads(loads, placement),
            loop_device_token_loads(loads, placement),
            rtol=1e-12,
        )

    def test_moe_peak_time_matches_loop(self, seed):
        rng = np.random.default_rng(seed)
        placement = random_placement(rng)
        loads = rng.uniform(0.0, 200.0, NUM_EXPERTS)
        compute = ComputeModel(B200, QWEN3_235B)
        totals = loop_moe_device_totals(QWEN3_235B, B200, loads, placement)
        peak = compute.moe_peak_time(loads, placement)
        assert peak.total == pytest.approx(totals.max(), rel=1e-12)
        vector_totals = [t.total for t in compute.moe_device_times(loads, placement)]
        np.testing.assert_allclose(vector_totals, totals, rtol=1e-12)

    def test_batched_moe_matches_per_layer(self, seed):
        rng = np.random.default_rng(seed)
        placements = [random_placement(rng) for _ in range(3)]
        layer_loads = rng.uniform(0.0, 200.0, (3, NUM_EXPERTS))
        compute = ComputeModel(B200, QWEN3_235B)
        batched = compute.moe_peak_times(layer_loads, placements)
        for layer, placement in enumerate(placements):
            single = compute.moe_peak_time(layer_loads[layer], placement)
            assert batched[layer].compute == pytest.approx(single.compute)
            assert batched[layer].memory == pytest.approx(single.memory)

    def test_evict_stale_matches_loop_semantics(self, seed):
        rng = np.random.default_rng(seed)
        placement = random_placement(rng, fill=0.9)
        balancer = make_balancer(placement, rng, num_pending=0)
        # Push a few experts cold so eviction has candidates.
        balancer.predicted_loads[:: max(1, NUM_EXPERTS // 6)] = 0.01

        reference = placement.clone()
        heats = balancer.heats(include_pending=False)
        mean_heat = heats.mean()
        expected_drops = 0
        for device in range(reference.num_devices):
            for expert in list(reference.experts_on(device)):
                if expert in reference.native_experts_on(device):
                    continue
                per_replica = balancer.predicted_loads[expert] / reference.num_replicas(
                    expert
                )
                if per_replica < balancer.config.drop_fraction * mean_heat:
                    reference.drop_replica(expert, device)
                    expected_drops += 1

        assert balancer.evict_stale() == expected_drops
        for expert in range(NUM_EXPERTS):
            assert placement.replicas(expert) == reference.replicas(expert)


class TestReplicaMatrixInvariants:
    def test_matrix_tracks_add_and_drop(self):
        rng = np.random.default_rng(7)
        placement = ExpertPlacement(NUM_EXPERTS, NUM_DEVICES, shadow_slots=2)
        for _ in range(200):
            expert = int(rng.integers(NUM_EXPERTS))
            device = int(rng.integers(NUM_DEVICES))
            if not placement.hosts(device, expert) and placement.shadow_free(device) > 0:
                placement.add_replica(expert, device)
            elif expert in placement.experts_on(device) and device != placement.native_device(expert):
                placement.drop_replica(expert, device)
            matrix = placement.replica_matrix
            counts = placement.replica_counts
            for e in range(NUM_EXPERTS):
                replicas = placement.replicas(e)
                assert counts[e] == len(replicas)
                assert set(np.nonzero(matrix[e])[0]) == set(replicas)
            shadow = placement.shadow_counts
            for d in range(NUM_DEVICES):
                assert shadow[d] == placement.shadow_slots - placement.shadow_free(d)

    def test_views_are_read_only(self):
        placement = ExpertPlacement(4, 2)
        with pytest.raises(ValueError):
            placement.replica_matrix[0, 0] = 5.0
        with pytest.raises(ValueError):
            placement.replica_counts[0] = 5
        with pytest.raises(ValueError):
            placement.shadow_counts[0] = 5

    def test_clone_is_independent(self):
        placement = ExpertPlacement(8, 4, shadow_slots=1)
        clone = placement.clone()
        placement.add_replica(0, 3)
        assert placement.replica_counts[0] == 2
        assert clone.replica_counts[0] == 1
        assert clone.replica_matrix[0, 3] == 0.0
