"""Tests for the serving simulator and balancer integration."""

import pytest

from repro.balancer import (
    GreedyBalancer,
    NoBalancer,
    NonInvasiveBalancer,
    TopologyAwareBalancer,
)
from repro.engine import (
    BalancingConfig,
    EngineConfig,
    PricingConfig,
    ServingConfig,
    ServingSimulator,
)
from repro.models import QWEN3_235B
from repro.systems import build_wsc
from repro.workload import AzureLikeMixer, CHAT, CODING, MATH, PRIVACY, GatingSimulator


def make_simulator(balancer_cls, iterations=30, mixer=None, seed=3, **serving_kwargs):
    system = build_wsc(QWEN3_235B, side=4, tp=4, mapping="er")
    if mixer is None:
        mixer = MATH
    workload = GatingSimulator(
        QWEN3_235B,
        num_groups=system.mapping.dp,
        tokens_per_group=64,
        mixer=mixer,
        num_layers=2,
        seed=seed,
    )
    return ServingSimulator(
        system.device,
        QWEN3_235B,
        system.mapping,
        workload,
        balancer_cls,
        engine_config=EngineConfig(tokens_per_group=64),
        serving_config=ServingConfig.from_flat(num_iterations=iterations, **serving_kwargs),
    )


class TestBasicRun:
    def test_trace_length(self):
        trace = make_simulator(NoBalancer, iterations=10).run()
        assert len(trace.records) == 10

    def test_latency_positive(self):
        trace = make_simulator(NoBalancer, iterations=5).run()
        assert all(record.latency > 0 for record in trace.records)

    def test_no_balancer_never_migrates(self):
        trace = make_simulator(NoBalancer, iterations=15).run()
        assert trace.num_migrations() == 0
        assert trace.total_migration_overhead() == 0.0

    def test_breakdown_recorded(self):
        trace = make_simulator(NoBalancer, iterations=5).run()
        record = trace.records[0]
        assert record.breakdown.allreduce > 0
        assert record.breakdown.alltoall > 0


class TestBalancingEffects:
    def test_balancers_cut_load_ratio(self):
        base = make_simulator(NoBalancer).run().mean_load_ratio(skip=15)
        for cls in (GreedyBalancer, TopologyAwareBalancer, NonInvasiveBalancer):
            balanced = make_simulator(cls).run().mean_load_ratio(skip=15)
            assert balanced < base

    def test_invasive_migration_interrupts(self):
        trace = make_simulator(GreedyBalancer).run()
        assert trace.num_migrations() > 0
        assert trace.num_interruptions() > 0
        assert trace.total_migration_overhead() > 0

    def test_non_invasive_never_interrupts(self):
        trace = make_simulator(NonInvasiveBalancer).run()
        assert trace.num_migrations() > 0
        assert trace.num_interruptions() == 0
        assert trace.total_migration_overhead() == 0.0

    def test_topology_aware_cheaper_than_greedy(self):
        greedy = make_simulator(GreedyBalancer).run()
        topo = make_simulator(TopologyAwareBalancer).run()
        assert (
            topo.total_migration_overhead() < greedy.total_migration_overhead()
        )

    def test_side_channel_hides_invasive_migration(self):
        trace = make_simulator(GreedyBalancer, migration_side_channel=True).run()
        assert trace.num_migrations() > 0
        assert trace.total_migration_overhead() == 0.0

    def test_beta_limits_invasive_frequency(self):
        frequent = make_simulator(GreedyBalancer, beta_iters=1, seed=5).run()
        throttled = make_simulator(GreedyBalancer, beta_iters=25, seed=5).run()
        assert throttled.num_interruptions() <= frequent.num_interruptions()

    def test_warmup_defers_balancing(self):
        trace = make_simulator(NonInvasiveBalancer, warmup_iters=12).run()
        early = [r for r in trace.records if r.iteration < 12]
        assert all(record.migrations_started == 0 for record in early)


class TestNonInvasiveDraining:
    def test_migrations_eventually_complete(self):
        trace = make_simulator(NonInvasiveBalancer, iterations=40).run()
        completed = sum(record.migrations_completed for record in trace.records)
        assert completed > 0

    def test_drift_keeps_balancer_active(self):
        mixer = AzureLikeMixer([CHAT, CODING, MATH, PRIVACY], period_iters=40)
        trace = make_simulator(NonInvasiveBalancer, iterations=60, mixer=mixer).run()
        late_migrations = sum(
            record.migrations_started for record in trace.records[30:]
        )
        assert late_migrations > 0


class TestTraceStats:
    def test_mean_component(self):
        trace = make_simulator(NoBalancer, iterations=5).run()
        for component in ("moe", "alltoall", "allreduce", "attention"):
            assert trace.mean_component(component) > 0

    def test_unknown_component(self):
        trace = make_simulator(NoBalancer, iterations=5).run()
        with pytest.raises(ValueError):
            trace.mean_component("gating")

    def test_load_ratio_bounded_below_by_one(self):
        trace = make_simulator(NoBalancer, iterations=5).run()
        assert all(record.load_ratio >= 1.0 for record in trace.records)

    def test_serving_config_validation(self):
        with pytest.raises(ValueError):
            ServingConfig(num_iterations=0)
        with pytest.raises(ValueError):
            BalancingConfig(alpha=-1.0)
        with pytest.raises(ValueError):
            BalancingConfig(shadow_slots=-1)
        # Validation also reaches through the grouped constructor.
        with pytest.raises(ValueError):
            ServingConfig(balancing=BalancingConfig(beta_iters=-1))

    def test_inert_demand_flag_combo_warns(self):
        """per_layer_demand only reaches the pricer through the per-layer
        plan; leaving it at its True default while switching per-layer
        pricing off is silently inert and almost always a mistake."""
        with pytest.warns(UserWarning, match="per_layer_demand.*inert"):
            PricingConfig(per_layer_alltoall=False)
        with pytest.warns(UserWarning, match="inert"):
            ServingConfig.from_flat(
                per_layer_alltoall=False, per_layer_demand=True
            )

    def test_explicit_broadcast_combos_do_not_warn(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            PricingConfig(per_layer_alltoall=False, per_layer_demand=False)
            PricingConfig(per_layer_alltoall=True, per_layer_demand=True)
            PricingConfig(per_layer_alltoall=True, per_layer_demand=False)
            ServingConfig.from_flat(
                per_layer_alltoall=False, per_layer_demand=False
            )


class TestSteadyTail:
    """Regression: _steady must never hand back warmup iterations."""

    def test_skip_beyond_trace_returns_last_record(self):
        trace = make_simulator(NoBalancer, iterations=5).run()
        # Asking for more warmup than the run has must NOT fall back to
        # the full trace (the old behaviour): only the final record — the
        # closest to steady state — may stand in.
        steady = trace._steady(10)
        assert steady == [trace.records[-1]]
        assert trace.mean_latency(skip=10) == trace.records[-1].latency

    def test_skip_equal_to_length_returns_last_record(self):
        trace = make_simulator(NoBalancer, iterations=5).run()
        assert trace._steady(5) == [trace.records[-1]]

    def test_normal_skip_unchanged(self):
        trace = make_simulator(NoBalancer, iterations=5).run()
        assert trace._steady(2) == trace.records[2:]
        assert trace._steady(0) == trace.records


class TestDynamicBatch:
    """step() — the public, per-iteration entry the serving front end
    drives with a continuous-batching batch size."""

    def test_step_default_is_bit_identical_to_run(self):
        trace = make_simulator(NoBalancer, iterations=6).run()
        stepped = make_simulator(NoBalancer, iterations=6)
        records = [stepped.step() for _ in range(6)]
        for ours, ref in zip(records, trace.records):
            assert ours.latency == ref.latency
            assert ours.alltoall_mean == ref.alltoall_mean
            assert ours.max_device_load == ref.max_device_load

    def test_step_tokens_scale_latency(self):
        small = make_simulator(NoBalancer).step(tokens_per_group=8)
        large = make_simulator(NoBalancer).step(tokens_per_group=1024)
        assert small.latency < large.latency
        # Both sides of the iteration scale: attention/all-reduce via the
        # batch override, MoE/all-to-all via the drawn demand.
        assert small.breakdown.allreduce < large.breakdown.allreduce
        assert small.breakdown.moe.total < large.breakdown.moe.total
        assert small.max_device_load < large.max_device_load

    def test_step_rejects_nonpositive_tokens(self):
        simulator = make_simulator(NoBalancer)
        with pytest.raises(ValueError):
            simulator.step(tokens_per_group=0)

    def test_varying_tokens_keep_demand_conserved(self):
        simulator = make_simulator(NoBalancer)
        for tokens in (8, 64, 8, 256):
            record = simulator.step(tokens_per_group=tokens)
            expected = (
                tokens
                * QWEN3_235B.experts_per_token
                * simulator.workload.num_groups
            )
            assert record.mean_device_load * simulator.mapping.topology.num_devices == pytest.approx(expected)
