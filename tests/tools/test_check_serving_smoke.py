"""Unit tests for the checked-in CI perf-gate tool.

The gate logic used to live as an inline heredoc in the workflow YAML;
these tests feed it synthetic smoke records so threshold and axis
regressions are caught by pytest instead of on a live CI runner.
"""

import importlib.util
import json
from pathlib import Path

import pytest

_TOOL = Path(__file__).resolve().parents[2] / "tools" / "ci" / "check_serving_smoke.py"
_spec = importlib.util.spec_from_file_location("check_serving_smoke", _TOOL)
check_serving_smoke = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_serving_smoke)


def config(
    strategy="greedy",
    layers=58,
    pricing="layer0",
    demand="broadcast",
    wall_s=1.0,
    iterations=150,
    **extra,
):
    return {
        "strategy": strategy,
        "num_experts": 64,
        "layers": layers,
        "pricing": pricing,
        "demand": demand,
        "iterations": iterations,
        "wall_s": wall_s,
        "iters_per_s": iterations / wall_s,
        "load_ratio": 1.5,
        "migrations": 100,
        **extra,
    }


def record(configs):
    return {
        "benchmark": "serving_speed",
        "configs": configs,
    }


def full_grid(walls=None):
    """One strategy over both depths and all three (pricing, demand) modes."""
    walls = walls or {}
    configs = []
    for layers in (2, 58):
        for pricing, demand in (
            ("layer0", "broadcast"),
            ("per_layer", "broadcast"),
            ("per_layer", "resolved"),
        ):
            wall = walls.get((layers, pricing, demand), 1.0)
            configs.append(
                config(layers=layers, pricing=pricing, demand=demand, wall_s=wall)
            )
    return configs


def devices_grid(sparse_wall=1.0, scale_mem=150 * 2**20):
    """The post-devices-axis shape: a 64-device group with dense and
    sparse operators plus a sparse-only 1024-device scale group."""
    configs = []
    for pricing, demand, operator in (
        ("layer0", "broadcast", "dense"),
        ("per_layer", "broadcast", "dense"),
        ("per_layer", "resolved", "dense"),
        ("per_layer", "resolved", "sparse"),
    ):
        for layers in (2, 58):
            configs.append(
                config(
                    layers=layers,
                    pricing=pricing,
                    demand=demand,
                    wall_s=sparse_wall if operator == "sparse" else 1.0,
                    devices=64,
                    operator=operator,
                    operator_bytes=(
                        400_000 if operator == "sparse" else 3_670_016
                    ),
                    dense_operator_bytes=3_670_016,
                )
            )
    configs.append(
        config(
            layers=58,
            pricing="per_layer",
            demand="resolved",
            wall_s=60.0,
            iterations=15,
            devices=1024,
            operator="sparse",
            operator_bytes=scale_mem,
            dense_operator_bytes=4127 * 2**20,
        )
    )
    return configs


def run_checks(configs, *argv):
    args = check_serving_smoke.parse_args(["record.json", *argv])
    return check_serving_smoke.check_record(record(configs), args)


EXPECT_AXES = (
    "--expect-iterations",
    "150",
    "--expect-layers",
    "2,58",
    "--expect-pricing",
    "layer0,per_layer",
    "--expect-demand",
    "broadcast,resolved",
)

EXPECT_DEVICES_AXES = (
    *EXPECT_AXES,
    "--expect-devices",
    "64,1024",
    "--max-sparse-ratio",
    "2.0",
)


class TestPassingRecord:
    def test_full_grid_passes(self):
        assert run_checks(full_grid(), *EXPECT_AXES) == []

    def test_ratios_under_budget_pass(self):
        # Pricing gates against layer0, resolved demand against the
        # per-layer broadcast path it rides on: 1.5x and 1.4x here.
        walls = {
            (58, "layer0", "broadcast"): 1.0,
            (58, "per_layer", "broadcast"): 1.5,
            (58, "per_layer", "resolved"): 2.1,
        }
        assert run_checks(full_grid(walls), *EXPECT_AXES) == []

    def test_devices_grid_passes(self):
        assert run_checks(devices_grid(), *EXPECT_DEVICES_AXES) == []

    def test_main_exit_zero(self, tmp_path, capsys):
        path = tmp_path / "smoke.json"
        path.write_text(json.dumps(record(full_grid())))
        assert check_serving_smoke.main([str(path), *EXPECT_AXES]) == 0
        out = capsys.readouterr().out
        assert "serving perf smoke ok" in out
        assert "resolved demand cost greedy@58" in out


class TestAxisViolations:
    def test_empty_record(self):
        assert run_checks([]) == ["record has no configs"]

    def test_missing_depth(self):
        configs = [c for c in full_grid() if c["layers"] == 58]
        errors = run_checks(configs, *EXPECT_AXES)
        assert any("layer axis" in error for error in errors)

    def test_missing_pricing_mode(self):
        configs = [c for c in full_grid() if c["pricing"] == "layer0"]
        errors = run_checks(configs, *EXPECT_AXES)
        assert any("pricing axis" in error for error in errors)

    def test_missing_demand_mode(self):
        configs = [c for c in full_grid() if c["demand"] == "broadcast"]
        errors = run_checks(configs, *EXPECT_AXES)
        assert any("demand axis" in error for error in errors)

    def test_missing_devices_group(self):
        configs = [c for c in devices_grid() if c["devices"] == 64]
        errors = run_checks(configs, *EXPECT_DEVICES_AXES)
        assert any("devices axis" in error for error in errors)

    def test_old_record_without_devices_flagged(self):
        """Pre-devices-axis records read as one unlabeled group, so the
        devices expectation flags them instead of crashing."""
        errors = run_checks(full_grid(), "--expect-devices", "64,1024")
        assert any("devices axis" in error for error in errors)

    def test_wrong_iteration_count(self):
        configs = full_grid()
        configs[0]["iterations"] = 30
        errors = run_checks(configs, *EXPECT_AXES)
        assert any("iterations" in error for error in errors)

    def test_scale_group_iterations_divided(self):
        """The 1024-device group runs expected/divisor iterations; the
        base count there is a violation, the divided count passes."""
        assert run_checks(devices_grid(), *EXPECT_DEVICES_AXES) == []
        configs = devices_grid()
        configs[-1]["iterations"] = 150
        errors = run_checks(configs, *EXPECT_DEVICES_AXES)
        assert any("expected 15 iterations" in error for error in errors)

    def test_nonpositive_wall(self):
        configs = full_grid()
        configs[-1]["wall_s"] = 0.0
        errors = run_checks(configs, *EXPECT_AXES)
        assert any("wall_s" in error for error in errors)

    def test_demand_axis_defaults_to_broadcast_for_old_records(self):
        """Pre-demand-axis records read as broadcast-only, so the demand
        expectation flags them instead of crashing."""
        configs = full_grid()
        for entry in configs:
            del entry["demand"]
        errors = run_checks(configs, "--expect-demand", "broadcast,resolved")
        assert any("demand axis" in error for error in errors)


class TestRatioGates:
    def test_pricing_ratio_over_budget(self):
        walls = {
            (58, "layer0", "broadcast"): 1.0,
            (58, "per_layer", "broadcast"): 2.1,
        }
        errors = run_checks(full_grid(walls), "--max-pricing-ratio", "2.0")
        assert any("per-layer pricing" in error and "2.10x" in error for error in errors)

    def test_demand_ratio_over_budget(self):
        # The demand gate's baseline is the per-layer broadcast wall, not
        # layer0 — resolution cost is budgeted against the path it
        # extends.
        walls = {
            (58, "layer0", "broadcast"): 1.0,
            (58, "per_layer", "broadcast"): 1.25,
            (58, "per_layer", "resolved"): 2.0,
        }
        errors = run_checks(full_grid(walls), "--max-demand-ratio", "1.5")
        assert any("resolved demand" in error and "1.60x" in error for error in errors)

    def test_sparse_ratio_over_budget(self):
        errors = run_checks(
            devices_grid(sparse_wall=2.1), *EXPECT_DEVICES_AXES
        )
        assert any(
            "sparse operator" in error and "2.10x" in error for error in errors
        )

    def test_sparse_ratio_not_gated_by_default(self):
        assert run_checks(devices_grid(sparse_wall=5.0), *EXPECT_AXES) == []

    def test_sparse_ratio_demands_a_pair(self):
        """--max-sparse-ratio against a record with no sparse/dense pair
        must fail loudly rather than silently never enforcing."""
        errors = run_checks(full_grid(), "--max-sparse-ratio", "2.0")
        assert any("no sparse/dense" in error for error in errors)

    def test_gate_only_at_deepest_depth(self):
        """A slow shallow config must not trip the gate (2-layer walls are
        too small to gate on; only the deepest depth is budgeted)."""
        walls = {
            (2, "layer0", "broadcast"): 0.1,
            (2, "per_layer", "resolved"): 1.0,
        }
        assert run_checks(full_grid(walls), *EXPECT_AXES) == []

    def test_gated_mode_missing_at_depth_reported(self):
        """A mode measured anywhere in the record (or demanded by the axis
        expectations) must exist at the gated depth — a partial run must
        not slip past with the budget unenforced."""
        configs = [
            c
            for c in full_grid()
            if not (c["layers"] == 58 and c["demand"] == "resolved")
        ]
        errors = run_checks(configs)
        assert any(
            "no (per_layer/resolved/dense) config at the gated depth" in error
            for error in errors
        )
        # Same hole via the axis expectations alone (record never measured
        # the resolved mode at all).
        broadcast_only = [c for c in full_grid() if c["demand"] == "broadcast"]
        errors = run_checks(
            broadcast_only,
            "--expect-pricing",
            "layer0,per_layer",
            "--expect-demand",
            "broadcast,resolved",
        )
        assert any("at the gated depth" in error for error in errors)

    def test_missing_baseline_reported(self):
        configs = [
            config(layers=58, pricing="per_layer", demand="resolved", wall_s=2.0)
        ]
        errors = run_checks(configs)
        assert any(
            "no (per_layer/broadcast/dense) baseline" in error
            for error in errors
        )

    def test_custom_budget_tightens_gate(self):
        walls = {
            (58, "layer0", "broadcast"): 1.0,
            (58, "per_layer", "resolved"): 1.4,
        }
        assert run_checks(full_grid(walls)) == []
        errors = run_checks(full_grid(walls), "--max-demand-ratio", "1.3")
        assert len(errors) == 1

    def test_scale_group_exempt_from_wall_gates(self):
        """The sparse-only 1024-device group has no layer-0 baseline by
        design; its walls must not produce missing-baseline errors."""
        errors = run_checks(devices_grid(), *EXPECT_DEVICES_AXES)
        assert not any("1024dev" in error and "baseline" in error for error in errors)


class TestMemoryGate:
    def test_scale_memory_over_fraction(self):
        configs = devices_grid(scale_mem=500 * 2**20)
        errors = run_checks(configs, *EXPECT_DEVICES_AXES)
        assert any(
            "1024dev" in error and "operator memory" in error for error in errors
        )

    def test_custom_fraction_tightens_gate(self):
        configs = devices_grid(scale_mem=150 * 2**20)  # ~3.6% of dense
        assert run_checks(configs, *EXPECT_DEVICES_AXES) == []
        errors = run_checks(
            configs, *EXPECT_DEVICES_AXES, "--max-operator-mem-fraction", "0.03"
        )
        assert any("operator memory" in error for error in errors)

    def test_sparse_config_must_record_bytes(self):
        configs = devices_grid()
        del configs[-1]["operator_bytes"]
        errors = run_checks(configs, *EXPECT_DEVICES_AXES)
        assert any(
            "must record positive" in error and "1024dev" in error
            for error in errors
        )


class TestMainErrors:
    def test_missing_file(self, tmp_path, capsys):
        assert check_serving_smoke.main([str(tmp_path / "nope.json")]) == 1
        assert "cannot read record" in capsys.readouterr().err

    def test_corrupt_json(self, tmp_path, capsys):
        path = tmp_path / "smoke.json"
        path.write_text("{not json")
        assert check_serving_smoke.main([str(path)]) == 1
        assert "cannot read record" in capsys.readouterr().err

    def test_violation_exit_one(self, tmp_path, capsys):
        path = tmp_path / "smoke.json"
        walls = {
            (58, "layer0", "broadcast"): 1.0,
            (58, "per_layer", "resolved"): 9.0,
        }
        path.write_text(json.dumps(record(full_grid(walls))))
        assert check_serving_smoke.main([str(path)]) == 1
        assert "FAIL:" in capsys.readouterr().err


def fault_config(
    scenario="single_tile",
    strategy="greedy",
    kind="failstop",
    recovery_iters=3.0,
    repairs=4,
    orphaned_final=0,
    **extra,
):
    return {
        "scenario": scenario,
        "strategy": strategy,
        "kind": kind,
        "devices": 64,
        "iterations": 80,
        "fault_iteration": 30,
        "recovery_iters": recovery_iters,
        "recovered": recovery_iters is not None,
        "repairs": repairs,
        "orphaned_final": orphaned_final,
        "degraded_fraction": 0.1,
        **extra,
    }


def fault_grid(overrides=None):
    """All four strategies over a fail-stop and a straggler scenario."""
    configs = []
    for scenario, kind in (("single_tile", "failstop"), ("stragglers", "stragglers")):
        for strategy in ("none", "greedy", "topology", "non_invasive"):
            fields = {
                "repairs": 4 if kind == "failstop" else 0,
                **(overrides or {}).get((scenario, strategy), {}),
            }
            configs.append(
                fault_config(
                    scenario=scenario, strategy=strategy, kind=kind, **fields
                )
            )
    return configs


def run_fault_checks(configs, *argv):
    args = check_serving_smoke.parse_args(["record.json", *argv])
    data = {"benchmark": "fault_tolerance", "configs": configs}
    return check_serving_smoke.check_record(data, args)


FAULT_AXES = ("--expect-faults", "single_tile,stragglers", "--max-recovery-iters", "20")


class TestFaultGates:
    def test_passing_record(self):
        assert run_fault_checks(fault_grid(), *FAULT_AXES) == []

    def test_wrong_scenario_axis(self):
        configs = [c for c in fault_grid() if c["scenario"] == "single_tile"]
        errors = run_fault_checks(configs, *FAULT_AXES)
        assert any("scenario axis" in error for error in errors)

    def test_missing_strategy_in_one_scenario(self):
        configs = [
            c
            for c in fault_grid()
            if not (c["scenario"] == "stragglers" and c["strategy"] == "greedy")
        ]
        errors = run_fault_checks(configs, *FAULT_AXES)
        assert any("do not cover" in error for error in errors)

    def test_failstop_without_repairs(self):
        configs = fault_grid({("single_tile", "greedy"): {"repairs": 0}})
        errors = run_fault_checks(configs, *FAULT_AXES)
        assert any("no repairs" in error for error in errors)

    def test_orphans_left_fails_gated_strategy(self):
        configs = fault_grid({("single_tile", "non_invasive"): {"orphaned_final": 2}})
        errors = run_fault_checks(configs, *FAULT_AXES)
        assert any("still orphaned" in error for error in errors)

    def test_recovery_over_budget(self):
        configs = fault_grid({("single_tile", "greedy"): {"recovery_iters": 35.0}})
        errors = run_fault_checks(configs, *FAULT_AXES)
        assert any("budget 20" in error for error in errors)

    def test_never_recovered(self):
        configs = fault_grid({("single_tile", "greedy"): {"recovery_iters": None}})
        errors = run_fault_checks(configs, *FAULT_AXES)
        assert any("never recovered" in error for error in errors)

    def test_ungated_strategies_may_lag(self):
        # NoBalancer never restores its load ratio after capacity loss;
        # the recovery budget only binds greedy and non_invasive.
        configs = fault_grid(
            {
                ("single_tile", "none"): {"recovery_iters": None},
                ("single_tile", "topology"): {"recovery_iters": 70.0},
            }
        )
        assert run_fault_checks(configs, *FAULT_AXES) == []

    def test_stragglers_not_recovery_gated(self):
        configs = fault_grid(
            {("stragglers", "greedy"): {"recovery_iters": None}}
        )
        assert run_fault_checks(configs, *FAULT_AXES) == []

    def test_serving_record_rejected(self):
        args = check_serving_smoke.parse_args(["record.json", *FAULT_AXES])
        errors = check_serving_smoke.check_record(
            record(full_grid()), args
        )
        assert any("not a fault_tolerance benchmark" in error for error in errors)

    def test_main_success_print(self, tmp_path, capsys):
        path = tmp_path / "faults.json"
        path.write_text(
            json.dumps({"benchmark": "fault_tolerance", "configs": fault_grid()})
        )
        assert check_serving_smoke.main([str(path), *FAULT_AXES]) == 0
        out = capsys.readouterr().out
        assert "fault recovery smoke ok" in out
        assert "recovery single_tile/greedy" in out


def sampling_config(kernel, backend, lanes_per_s, repeats=30):
    lanes = 3648
    return {
        "kernel": kernel,
        "backend": backend,
        "repeats": repeats,
        "lanes": lanes,
        "wall_s": lanes * repeats / lanes_per_s,
        "lanes_per_s": lanes_per_s,
        "slots_per_s": lanes_per_s * 256,
    }


def sampling_grid(backends=("numpy",), split_speed=2.0e6, legacy_speed=2.0e5):
    """Every gated kernel per backend plus the scalar baselines."""
    configs = []
    for backend in backends:
        for kernel in check_serving_smoke.SAMPLING_GATED_KERNELS:
            speed = split_speed if kernel == "multinomial_split" else 5.0e6
            configs.append(sampling_config(kernel, backend, speed))
    configs.append(sampling_config("hex_split", "numpy", 1.0e6))
    configs.append(sampling_config("legacy_chain", "generator", legacy_speed))
    configs.append(sampling_config("generator_binomial", "generator", 6.0e6))
    return configs


def run_sampling_checks(configs, *argv):
    args = check_serving_smoke.parse_args(["record.json", *argv])
    data = {"benchmark": "sampling_speed", "configs": configs}
    return check_serving_smoke.check_record(data, args)


SAMPLING_AXES = ("--expect-sampling", "numpy", "--min-sampling-speedup", "2.0")


class TestSamplingGates:
    def test_passing_record(self):
        assert run_sampling_checks(sampling_grid(), *SAMPLING_AXES) == []

    def test_numba_leg_covers_both_backends(self):
        configs = sampling_grid(backends=("numpy", "numba"))
        assert (
            run_sampling_checks(
                configs, "--expect-sampling", "numpy,numba"
            )
            == []
        )

    def test_backend_axis_mismatch(self):
        errors = run_sampling_checks(
            sampling_grid(), "--expect-sampling", "numpy,numba"
        )
        assert any("backend axis" in error for error in errors)

    def test_missing_gated_kernel(self):
        configs = [
            c for c in sampling_grid() if c["kernel"] != "binomial_btrs"
        ]
        errors = run_sampling_checks(configs, *SAMPLING_AXES)
        assert any("no binomial_btrs config" in error for error in errors)

    def test_speedup_under_floor(self):
        configs = sampling_grid(split_speed=3.0e5)  # 1.5x the legacy chain
        errors = run_sampling_checks(configs, *SAMPLING_AXES)
        assert any("1.50x the" in error for error in errors)

    def test_absolute_floor(self):
        configs = sampling_grid(split_speed=5.0e4, legacy_speed=1.0e4)
        errors = run_sampling_checks(configs, *SAMPLING_AXES)
        assert any("under the floor" in error for error in errors)

    def test_missing_legacy_baseline(self):
        configs = [
            c for c in sampling_grid() if c["kernel"] != "legacy_chain"
        ]
        errors = run_sampling_checks(configs, *SAMPLING_AXES)
        assert any("no legacy_chain baseline" in error for error in errors)

    def test_serving_record_rejected(self):
        args = check_serving_smoke.parse_args(["record.json", *SAMPLING_AXES])
        errors = check_serving_smoke.check_record(record(full_grid()), args)
        assert any(
            "not a sampling_speed benchmark" in error for error in errors
        )

    def test_main_success_print(self, tmp_path, capsys):
        path = tmp_path / "sampling.json"
        path.write_text(
            json.dumps(
                {"benchmark": "sampling_speed", "configs": sampling_grid()}
            )
        )
        assert check_serving_smoke.main([str(path), *SAMPLING_AXES]) == 0
        out = capsys.readouterr().out
        assert "sampling perf smoke ok" in out
        assert "vs legacy chain" in out


def slo_config(
    name="poisson_reference",
    process="poisson",
    arrival_rate=500.0,
    fault=False,
    arrived=96,
    completed=96,
    rejected=0,
    unfinished=0,
    ttft_p99_s=0.006,
    blacklist_events=0,
    reinstate_events=0,
    **extra,
):
    return {
        "name": name,
        "process": process,
        "arrival_rate": arrival_rate,
        "fault": fault,
        "num_requests": arrived,
        "arrived": arrived,
        "completed": completed,
        "rejected": rejected,
        "unfinished": unfinished,
        "elapsed_s": 0.5,
        "ttft_p50_s": 0.003,
        "ttft_p95_s": 0.005,
        "ttft_p99_s": ttft_p99_s,
        "tpot_p50_s": 0.0015,
        "goodput_rps": 400.0,
        "throughput_rps": 420.0,
        "blacklist_events": blacklist_events,
        "reinstate_events": reinstate_events,
        "drop_events": 0,
        "redispatches": 0,
        **extra,
    }


def slo_grid(overrides=None):
    """The four-config front-end axis the CI smoke runs."""
    overrides = overrides or {}
    cases = [
        ("poisson_reference", dict()),
        (
            "poisson_diurnal_overload",
            dict(arrival_rate=4000.0, completed=60, rejected=36, ttft_p99_s=0.04),
        ),
        (
            "mmpp_bursty",
            dict(
                process="mmpp",
                arrival_rate=3150.0,
                completed=80,
                rejected=16,
                ttft_p99_s=0.03,
            ),
        ),
        (
            "straggler_fault",
            dict(fault=True, blacklist_events=1, reinstate_events=1, ttft_p99_s=0.1),
        ),
    ]
    return [
        slo_config(name=name, **{**fields, **overrides.get(name, {})})
        for name, fields in cases
    ]


def run_slo_checks(configs, *argv):
    args = check_serving_smoke.parse_args(["record.json", *argv])
    data = {"benchmark": "slo_serving", "configs": configs}
    return check_serving_smoke.check_record(data, args)


SLO_AXES = (
    "--expect-slo",
    "poisson_reference,poisson_diurnal_overload,mmpp_bursty,straggler_fault",
    "--expect-arrival-rate",
    "500",
    "--max-p99-ttft",
    "0.02",
)


class TestSLOGates:
    def test_passing_record(self):
        assert run_slo_checks(slo_grid(), *SLO_AXES) == []

    def test_wrong_config_axis(self):
        configs = [c for c in slo_grid() if c["name"] != "mmpp_bursty"]
        errors = run_slo_checks(configs, *SLO_AXES)
        assert any("config axis" in error for error in errors)

    def test_conservation_violation(self):
        configs = slo_grid({"poisson_reference": {"completed": 90}})
        errors = run_slo_checks(configs, *SLO_AXES)
        assert any("conservation violated" in error for error in errors)

    def test_unfinished_requests_fail(self):
        configs = slo_grid(
            {"mmpp_bursty": {"completed": 70, "unfinished": 10}}
        )
        errors = run_slo_checks(configs, *SLO_AXES)
        assert any("left unfinished" in error for error in errors)

    def test_nothing_completed_fails(self):
        configs = slo_grid(
            {"poisson_reference": {"completed": 0, "rejected": 96}}
        )
        errors = run_slo_checks(configs, *SLO_AXES)
        assert any("no request completed" in error for error in errors)

    def test_fault_config_without_blacklist(self):
        configs = slo_grid({"straggler_fault": {"blacklist_events": 0}})
        errors = run_slo_checks(configs, *SLO_AXES)
        assert any("no blacklist event" in error for error in errors)

    def test_fault_config_without_reinstate(self):
        configs = slo_grid({"straggler_fault": {"reinstate_events": 0}})
        errors = run_slo_checks(configs, *SLO_AXES)
        assert any("never recovered" in error for error in errors)

    def test_p99_budget_gates_the_reference_point(self):
        configs = slo_grid({"poisson_reference": {"ttft_p99_s": 0.05}})
        errors = run_slo_checks(configs, *SLO_AXES)
        assert any("over the budget" in error for error in errors)

    def test_budget_ignores_other_operating_points(self):
        # The overload and bursty configs run far past the reference
        # rate; their p99 is reported, not budgeted.
        configs = slo_grid(
            {"poisson_diurnal_overload": {"ttft_p99_s": 1.0}}
        )
        assert run_slo_checks(configs, *SLO_AXES) == []

    def test_missing_reference_point(self):
        configs = slo_grid({"poisson_reference": {"arrival_rate": 250.0}})
        errors = run_slo_checks(configs, *SLO_AXES)
        assert any("expected arrival rate" in error for error in errors)

    def test_unpinned_rate_gates_every_nonfaulted_config(self):
        configs = slo_grid({"mmpp_bursty": {"ttft_p99_s": 0.5}})
        errors = run_slo_checks(
            configs, "--expect-slo", SLO_AXES[1], "--max-p99-ttft", "0.05"
        )
        assert any(
            "mmpp_bursty" in error and "over the budget" in error
            for error in errors
        )

    def test_serving_record_rejected(self):
        args = check_serving_smoke.parse_args(["record.json", *SLO_AXES])
        errors = check_serving_smoke.check_record(record(full_grid()), args)
        assert any(
            "not an slo_serving benchmark" in error for error in errors
        )

    def test_main_success_print(self, tmp_path, capsys):
        path = tmp_path / "slo.json"
        path.write_text(
            json.dumps({"benchmark": "slo_serving", "configs": slo_grid()})
        )
        assert check_serving_smoke.main([str(path), *SLO_AXES]) == 0
        out = capsys.readouterr().out
        assert "slo serving smoke ok" in out
        assert "p99 TTFT poisson_reference" in out
