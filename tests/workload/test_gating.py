"""Tests for the gating simulator."""

import numpy as np
import pytest

from repro.analysis.load import device_token_loads, load_ratio
from repro.mapping.placement import ExpertPlacement
from repro.models import QWEN3_235B
from repro.workload.mixers import AzureLikeMixer, ConstantMixer
from repro.workload.gating import GatingSimulator
from repro.workload.scenarios import CHAT, CODING, MATH, PRIVACY


def make_sim(**kwargs):
    defaults = dict(
        model=QWEN3_235B,
        num_groups=4,
        tokens_per_group=64,
        mixer=MATH,
        num_layers=2,
        seed=7,
    )
    defaults.update(kwargs)
    return GatingSimulator(**defaults)


class TestCounts:
    def test_shape(self):
        counts = make_sim().next_counts()
        assert counts.shape == (2, 4, 128)

    def test_total_selections(self):
        counts = make_sim().next_counts()
        per_group = counts.sum(axis=2)
        np.testing.assert_allclose(per_group, 64 * 8)

    def test_nonnegative_integers(self):
        counts = make_sim().next_counts()
        assert (counts >= 0).all()
        np.testing.assert_array_equal(counts, counts.astype(int))

    def test_iteration_advances(self):
        sim = make_sim()
        assert sim.iteration == 0
        sim.next_counts()
        assert sim.iteration == 1

    def test_seeded_reproducibility(self):
        a = make_sim(seed=42).next_counts()
        b = make_sim(seed=42).next_counts()
        np.testing.assert_array_equal(a, b)

    def test_expert_loads_sums_groups(self):
        sim = make_sim()
        counts = sim.next_counts()
        loads = sim.expert_loads(counts)
        assert loads.shape == (2, 128)
        np.testing.assert_allclose(loads, counts.sum(axis=1))


class TestImbalanceProperties:
    """The three load properties Fig. 12 depends on."""

    def test_skewed_loads(self):
        sim = make_sim(tokens_per_group=256)
        for _ in range(30):
            counts = sim.next_counts()
        placement = ExpertPlacement(128, 8)
        loads = device_token_loads(counts[0].sum(axis=0), placement)
        assert load_ratio(loads) > 1.5

    def test_balanced_mode_is_uniform(self):
        sim = make_sim(balanced=True, tokens_per_group=4096)
        counts = sim.next_counts()
        placement = ExpertPlacement(128, 8)
        loads = device_token_loads(counts[0].sum(axis=0), placement)
        assert load_ratio(loads) < 1.15

    def test_fixed_scenario_stabilises_after_warmup(self):
        """Device load ratios stabilise in a fixed scenario (Fig. 12)."""
        sim = make_sim(tokens_per_group=1024, adaptation=0.15)
        placement = ExpertPlacement(128, 8)
        ratios = []
        for _ in range(60):
            counts = sim.next_counts()
            loads = device_token_loads(counts[0].sum(axis=0), placement)
            ratios.append(loads / loads.sum())
        early_drift = np.abs(np.diff(ratios[:10], axis=0)).mean()
        late_drift = np.abs(np.diff(ratios[-10:], axis=0)).mean()
        assert late_drift < early_drift

    def test_mixed_scenario_keeps_drifting(self):
        mixer = AzureLikeMixer([CHAT, CODING, MATH, PRIVACY], period_iters=120)
        sim = make_sim(mixer=mixer, tokens_per_group=1024, adaptation=0.3)
        popularity_snapshots = []
        for iteration in range(180):
            sim.next_counts()
            if iteration % 60 == 0:
                popularity_snapshots.append(sim._state[0].copy())
        assert not np.allclose(
            popularity_snapshots[0], popularity_snapshots[-1], atol=1e-3
        )


class TestVectorizedLoopParity:
    """The vectorized next_counts must be bit-identical to the seed loop."""

    @staticmethod
    def loop_next_counts(sim):
        """The seed implementation of next_counts, verbatim."""
        model = sim.model
        selections = sim.tokens_per_group * model.experts_per_token
        counts = np.zeros(
            (sim.num_layers, sim.num_groups, model.num_experts), dtype=float
        )
        for layer in range(sim.num_layers):
            if sim.balanced:
                popularity = np.full(model.num_experts, 1.0 / model.num_experts)
            else:
                target = sim.mixer.popularity(
                    model.num_experts, layer, sim._iteration
                )
                sim._state[layer] = (
                    (1.0 - sim.adaptation) * sim._state[layer]
                    + sim.adaptation * target
                )
                popularity = sim._state[layer]
            for group in range(sim.num_groups):
                counts[layer, group] = sim._rng.multinomial(selections, popularity)
        sim._iteration += 1
        return counts

    @pytest.mark.parametrize("balanced", [False, True])
    def test_counts_and_state_bit_identical(self, balanced):
        # Noise-free drifting mixers: the AR(1) scan in weights_batch
        # reassociates floats (sequential parity is pinned to 1e-12 in
        # test_arrivals), so the bitwise multinomial draw-order oracle
        # here runs on the noise-free path, which is exact either way.
        mixer_a = AzureLikeMixer(
            [CHAT, CODING, MATH, PRIVACY], period_iters=40, noise=0.0
        )
        mixer_b = AzureLikeMixer(
            [CHAT, CODING, MATH, PRIVACY], period_iters=40, noise=0.0
        )
        new = make_sim(mixer=mixer_a, num_layers=3, balanced=balanced)
        reference = make_sim(mixer=mixer_b, num_layers=3, balanced=balanced)
        for _ in range(12):
            np.testing.assert_array_equal(
                new.next_counts(), self.loop_next_counts(reference)
            )
        np.testing.assert_array_equal(new._state, reference._state)
        # RNG streams remained aligned throughout.
        assert new._rng.integers(1 << 30) == reference._rng.integers(1 << 30)


class TestNextLoads:
    """The serving-loop fast path: layer-0 group counts + layer totals."""

    def test_shapes(self):
        counts0, loads = make_sim().next_loads()
        assert counts0.shape == (4, 128)
        assert loads.shape == (2, 128)

    def test_layer0_totals_consistent(self):
        counts0, loads = make_sim().next_loads()
        np.testing.assert_array_equal(loads[0], counts0.sum(axis=0))

    def test_total_selections_per_layer(self):
        _counts0, loads = make_sim(num_layers=5).next_loads()
        # Every layer's totals sum to num_groups * tokens * top_k: layers
        # past the first draw one multinomial with all groups' trials.
        np.testing.assert_allclose(loads.sum(axis=1), 4 * 64 * 8)

    def test_popularity_state_matches_next_counts(self):
        mixer_a = AzureLikeMixer([CHAT, CODING, MATH, PRIVACY], period_iters=40)
        mixer_b = AzureLikeMixer([CHAT, CODING, MATH, PRIVACY], period_iters=40)
        via_loads = make_sim(mixer=mixer_a, num_layers=3)
        via_counts = make_sim(mixer=mixer_b, num_layers=3)
        for _ in range(8):
            via_loads.next_loads()
            via_counts.next_counts()
        # Both paths advance the same popularity relaxation; only the
        # number of RNG values consumed differs.
        np.testing.assert_array_equal(via_loads._state, via_counts._state)
        assert via_loads.iteration == via_counts.iteration

    def test_single_layer(self):
        counts0, loads = make_sim(num_layers=1).next_loads()
        assert loads.shape == (1, 128)
        np.testing.assert_array_equal(loads[0], counts0.sum(axis=0))

    def test_seeded_reproducibility(self):
        a0, al = make_sim(seed=42).next_loads()
        b0, bl = make_sim(seed=42).next_loads()
        np.testing.assert_array_equal(a0, b0)
        np.testing.assert_array_equal(al, bl)


class TestNextGroupCounts:
    """The demand-resolved path: per-layer group counts for every layer."""

    def test_shapes(self):
        counts = make_sim(num_layers=3).next_group_counts()
        assert counts.shape == (3, 4, 128)

    @pytest.mark.parametrize("group_split", ["gaussian", "multinomial"])
    def test_layer0_bit_identical_to_next_loads(self, group_split):
        """Layer 0 and the layer totals consume the RNG stream exactly as
        next_loads, so the first iteration's totals are bitwise equal."""
        counts = make_sim(group_split=group_split).next_group_counts()
        counts0, loads = make_sim().next_loads()
        np.testing.assert_array_equal(counts[0], counts0)
        np.testing.assert_array_equal(counts.sum(axis=1)[0], loads[0])

    @pytest.mark.parametrize("group_split", ["gaussian", "multinomial"])
    def test_totals_match_next_loads_bitwise_first_iteration(self, group_split):
        sim = make_sim(num_layers=5, group_split=group_split)
        counts = sim.next_group_counts()
        _counts0, loads = make_sim(num_layers=5).next_loads()
        if group_split == "multinomial":
            np.testing.assert_array_equal(counts.sum(axis=1), loads)
        else:
            np.testing.assert_allclose(counts.sum(axis=1), loads, rtol=1e-9)

    @pytest.mark.parametrize("group_split", ["gaussian", "multinomial"])
    def test_totals_preserved_every_iteration(self, group_split):
        """Every layer's totals sum to num_groups * tokens * top_k — the
        split never creates or loses selection slots."""
        sim = make_sim(num_layers=4, group_split=group_split)
        for _ in range(6):
            counts = sim.next_group_counts()
            np.testing.assert_allclose(counts.sum(axis=(1, 2)), 4 * 64 * 8)
            assert (counts >= 0).all()

    def test_multinomial_split_is_integer(self):
        counts = make_sim(group_split="multinomial").next_group_counts()
        np.testing.assert_array_equal(counts, counts.astype(int))

    @pytest.mark.parametrize("group_split", ["gaussian", "multinomial"])
    def test_totals_match_next_loads_in_distribution(self, group_split):
        """Fixed-seed moment check: long-run per-expert layer totals agree
        with next_loads' within sampling tolerance (both draw layer totals
        from the identical multinomial law)."""
        iterations = 150
        via_groups = make_sim(
            num_layers=2, tokens_per_group=256, group_split=group_split, seed=5
        )
        via_loads = make_sim(num_layers=2, tokens_per_group=256, seed=6)
        group_totals = np.zeros(128)
        load_totals = np.zeros(128)
        for _ in range(iterations):
            group_totals += via_groups.next_group_counts().sum(axis=1)[1]
            load_totals += via_loads.next_loads()[1][1]
        np.testing.assert_allclose(
            group_totals / iterations, load_totals / iterations, rtol=0.12, atol=6.0
        )

    @pytest.mark.parametrize("group_split", ["gaussian", "multinomial"])
    def test_group_split_variance_matches_flat_slot_model(self, group_split):
        """The split's cross-group fluctuation carries the multinomial
        split variance (total/G)(1 - 1/G) on well-populated cells."""
        sim = make_sim(
            num_groups=16, tokens_per_group=128, group_split=group_split, seed=1
        )
        num = den = 0.0
        for _ in range(300):
            counts = sim.next_group_counts()
            totals = counts.sum(axis=1)[1]
            big = totals >= 200
            base = totals[big] / 16
            num += ((counts[1][:, big] - base) ** 2).mean(axis=0).sum()
            den += (base * (1 - 1 / 16)).sum()
        assert num / den == pytest.approx(1.0, rel=0.12)

    def test_popularity_state_matches_next_loads(self):
        mixer_a = AzureLikeMixer([CHAT, CODING, MATH, PRIVACY], period_iters=40)
        mixer_b = AzureLikeMixer([CHAT, CODING, MATH, PRIVACY], period_iters=40)
        via_groups = make_sim(mixer=mixer_a, num_layers=3)
        via_loads = make_sim(mixer=mixer_b, num_layers=3)
        for _ in range(8):
            via_groups.next_group_counts()
            via_loads.next_loads()
        np.testing.assert_array_equal(via_groups._state, via_loads._state)
        assert via_groups.iteration == via_loads.iteration

    def test_seeded_reproducibility(self):
        a = make_sim(seed=42).next_group_counts()
        b = make_sim(seed=42).next_group_counts()
        np.testing.assert_array_equal(a, b)

    def test_single_layer(self):
        counts = make_sim(num_layers=1).next_group_counts()
        assert counts.shape == (1, 4, 128)
        np.testing.assert_allclose(counts.sum(axis=2), 64 * 8)

    def test_oracles_untouched(self):
        """next_counts / next_loads stay bit-identical whether or not the
        resolved path has consumed draws from a sibling simulator."""
        a = make_sim(seed=9)
        b = make_sim(seed=9)
        a.next_group_counts()
        b.next_group_counts()
        np.testing.assert_array_equal(a.next_counts(), b.next_counts())

    def test_rejects_bad_group_split(self):
        with pytest.raises(ValueError):
            make_sim(group_split="poisson")


class TestValidation:
    def test_rejects_bad_groups(self):
        with pytest.raises(ValueError):
            make_sim(num_groups=0)

    def test_rejects_bad_adaptation(self):
        with pytest.raises(ValueError):
            make_sim(adaptation=0.0)

    def test_rejects_bad_layers(self):
        with pytest.raises(ValueError):
            make_sim(num_layers=0)

    def test_scenario_promoted_to_constant_mixer(self):
        sim = make_sim(mixer=MATH)
        assert isinstance(sim.mixer, ConstantMixer)


class TestSamplerConfig:
    def test_rejects_bad_sampler(self):
        with pytest.raises(ValueError):
            make_sim(sampler="compiled")

    def test_rejects_bad_sampling_backend(self):
        with pytest.raises(ValueError):
            make_sim(sampling_backend="fortran")

    def test_backend_resolved_at_construction(self):
        sim = make_sim(sampling_backend="numpy")
        assert sim.sampling_backend == "numpy"

    def test_default_is_batched_multinomial(self):
        sim = make_sim()
        assert sim.group_split == "multinomial"
        assert sim.sampler == "batched"

    def test_legacy_sampler_splits_exactly(self):
        sim = make_sim(sampler="legacy", num_layers=3)
        counts = sim.next_group_counts()
        assert (counts == np.round(counts)).all()
        # Layer totals over groups match an oracle twin's draws exactly
        # (the first two RNG consumptions are shared with next_loads).
        _, loads = make_sim(sampler="legacy", num_layers=3).next_loads()
        np.testing.assert_array_equal(counts.sum(axis=1), loads)

    def test_batched_and_legacy_same_split_law(self):
        """Tree vs sequential chain: same variance on the split cells."""
        stats = []
        for sampler in ("batched", "legacy"):
            sim = make_sim(
                sampler=sampler, num_layers=2, num_groups=4,
                tokens_per_group=256, seed=3,
            )
            cells = np.stack(
                [sim.next_group_counts()[1] for _ in range(400)]
            )
            totals = cells.sum(axis=1)
            hot = totals.mean(axis=0) > 200
            # Variance of cell - total/G isolates the split noise.
            resid = cells[:, :, hot] - totals[:, None, hot] / 4
            stats.append(resid.var())
        assert abs(stats[0] / stats[1] - 1.0) < 0.15, stats


class TestReturnLoads:
    def test_multinomial_loads_equal_group_sum_exactly(self):
        sim = make_sim(num_layers=4)
        for _ in range(3):
            counts, loads = sim.next_group_counts(return_loads=True)
            np.testing.assert_array_equal(loads, counts.sum(axis=1))

    def test_gaussian_loads_bitwise_equal_group_sum(self):
        sim = make_sim(group_split="gaussian", num_layers=4)
        counts, loads = sim.next_group_counts(return_loads=True)
        np.testing.assert_array_equal(loads, counts.sum(axis=1))

    def test_return_loads_consumes_same_stream(self):
        a = make_sim(seed=11)
        b = make_sim(seed=11)
        counts_a = a.next_group_counts()
        counts_b, _ = b.next_group_counts(return_loads=True)
        np.testing.assert_array_equal(counts_a, counts_b)

    def test_single_layer_loads(self):
        sim = make_sim(num_layers=1)
        counts, loads = sim.next_group_counts(return_loads=True)
        np.testing.assert_array_equal(loads, counts.sum(axis=1))

    def test_out_buffer_reused_and_rewritten(self):
        sim = make_sim(num_layers=3)
        ref = make_sim(num_layers=3)
        buf = np.full(
            (3, sim.num_groups, sim.model.num_experts), -1.0
        )
        first = sim.next_group_counts(out=buf)
        assert first is buf
        np.testing.assert_array_equal(first, ref.next_group_counts())
        second = sim.next_group_counts(out=buf)
        assert second is buf
        np.testing.assert_array_equal(second, ref.next_group_counts())

    def test_out_shape_validated(self):
        sim = make_sim(num_layers=3)
        with pytest.raises(ValueError):
            sim.next_group_counts(out=np.empty((2, 2, 2)))
