"""Distribution and determinism tests for the batched sampling kernels.

The kernels must match ``numpy.random.Generator.binomial`` *in
distribution* (they consume the bit stream differently, so never
bit-for-bit): fixed-seed moment checks bound the first two moments and
chi-squared goodness-of-fit tests compare full pmfs against exact
binomial probabilities.  All statistics are deterministic (fixed seeds),
so the critical values — 99.9th percentile via the Wilson–Hilferty cube
approximation — gate real regressions, not sampling noise.
"""

import math

import numpy as np
import pytest

from repro.workload import sampling
from repro.workload.sampling import (
    available_backends,
    binomial,
    binomial_half,
    multinomial,
    multinomial_split,
    resolve_backend,
)

HAS_NUMBA = "numba" in available_backends()


def chi2_critical(dof: int, z: float = 3.09) -> float:
    """Wilson–Hilferty 99.9th-percentile chi-squared quantile."""
    h = 2.0 / (9.0 * dof)
    return dof * (1.0 - h + z * math.sqrt(h)) ** 3


def binom_pmf(n: int, p: float) -> np.ndarray:
    k = np.arange(n + 1)
    comb = np.array([math.comb(n, int(i)) for i in k], dtype=float)
    return comb * p**k * (1.0 - p) ** (n - k)


def chi2_binomial(draws: np.ndarray, n: int, p: float) -> tuple[float, int]:
    """Goodness-of-fit statistic against the exact ``Binomial(n, p)`` pmf,
    tail bins lumped until every expected count is at least 8."""
    expected = binom_pmf(n, p) * draws.size
    counts = np.bincount(draws.astype(np.int64), minlength=n + 1).astype(float)
    keep = expected >= 8.0
    assert keep.any(), "test shape too small for a chi-squared bin"
    lo = int(np.argmax(keep))
    hi = int(n - np.argmax(keep[::-1]))
    obs = np.concatenate(
        [[counts[: lo + 1].sum()], counts[lo + 1 : hi], [counts[hi:].sum()]]
    )
    exp = np.concatenate(
        [[expected[: lo + 1].sum()], expected[lo + 1 : hi], [expected[hi:].sum()]]
    )
    stat = float(((obs - exp) ** 2 / exp).sum())
    return stat, obs.size - 1


class TestBinomialHalf:
    def test_moments_across_lane_sizes(self):
        # Covers the one-word (<=64), two-word (<=128) and segmented paths.
        rng = np.random.default_rng(101)
        n = np.array([0, 1, 5, 31, 64, 65, 127, 128, 129, 300, 1000])
        reps = 4000
        draws = np.stack([binomial_half(rng, n) for _ in range(reps)])
        assert (draws >= 0).all() and (draws <= n).all()
        assert (draws[:, 0] == 0).all()
        mean_err = np.abs(draws.mean(axis=0) - n / 2)
        assert (mean_err <= 3.5 * np.sqrt(n / 4 / reps) + 1e-9).all()
        var = draws.var(axis=0)
        big = n >= 31
        assert np.abs(var[big] / (n[big] / 4) - 1.0).max() < 0.12

    @pytest.mark.parametrize("n", [10, 60, 100, 250])
    def test_chi_squared_exact_pmf(self, n):
        rng = np.random.default_rng(7 + n)
        draws = np.concatenate(
            [binomial_half(rng, np.full(500, n)) for _ in range(12)]
        )
        stat, dof = chi2_binomial(draws, n, 0.5)
        assert stat < chi2_critical(dof), (n, stat, dof)

    def test_matches_generator_binomial_moments(self):
        # Same law as Generator.binomial(n, 0.5) on a fixed seed pair.
        n = np.full(3000, 96)
        ours = binomial_half(np.random.default_rng(3), np.tile(n, 10))
        ref = np.random.default_rng(4).binomial(np.tile(n, 10), 0.5)
        assert abs(ours.mean() - ref.mean()) < 0.25
        assert abs(ours.var() / ref.var() - 1.0) < 0.05


class TestBinomial:
    def test_heterogeneous_moments(self):
        rng = np.random.default_rng(11)
        n = np.array([0, 4, 12, 40, 40, 200, 1000, 64])
        p = np.array([0.3, 0.05, 0.5, 0.5, 0.9, 0.02, 0.25, 0.999])
        reps = 4000
        draws = np.stack([binomial(rng, n, p) for _ in range(reps)])
        assert (draws >= 0).all() and (draws <= n).all()
        mean = n * p
        sd = np.sqrt(np.maximum(n * p * (1 - p), 1e-12) / reps)
        assert (np.abs(draws.mean(axis=0) - mean) <= 4.0 * sd + 1e-9).all()
        var = n * p * (1 - p)
        well = var > 2.0
        assert np.abs(draws.var(axis=0)[well] / var[well] - 1.0).max() < 0.12

    @pytest.mark.parametrize(
        "n,p",
        [
            (40, 0.5),  # BTRS bulk path (n*p >= 10)
            (60, 0.08),  # inverse-CDF small-mean path
            (25, 0.9),  # complement path (p > 1/2)
            (500, 0.04),  # BTRS through a small p
        ],
    )
    def test_chi_squared_vs_generator_law(self, n, p):
        rng = np.random.default_rng(int(n * 1000 + p * 100))
        draws = np.concatenate(
            [binomial(rng, np.full(500, n), np.full(500, p)) for _ in range(12)]
        )
        stat, dof = chi2_binomial(draws, n, p)
        assert stat < chi2_critical(dof), (n, p, stat, dof)

    def test_edge_parameters(self):
        rng = np.random.default_rng(0)
        n = np.array([0, 10, 10, 10])
        p = np.array([0.7, 0.0, 1.0, 0.5])
        draws = binomial(rng, n, p)
        assert draws[0] == 0 and draws[1] == 0 and draws[2] == 10
        assert 0 <= draws[3] <= 10

    def test_validates_parameters(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            binomial(rng, np.array([-1]), np.array([0.5]))
        with pytest.raises(ValueError):
            binomial(rng, np.array([5]), np.array([1.5]))


class TestMultinomial:
    def test_sums_and_moments(self):
        rng = np.random.default_rng(21)
        p = np.array([[0.5, 0.25, 0.125, 0.125], [0.1, 0.2, 0.3, 0.4]])
        n = np.array([96, 400])
        reps = 3000
        draws = np.stack([multinomial(rng, n, p) for _ in range(reps)])
        assert (draws.sum(axis=-1) == n[None, :]).all()
        mean = n[:, None] * p
        sd = np.sqrt(mean * (1 - p) / reps)
        assert (np.abs(draws.mean(axis=0) - mean) <= 4.0 * sd + 1e-9).all()

    def test_zero_weight_category_draws_nothing(self):
        rng = np.random.default_rng(5)
        p = np.array([0.5, 0.0, 0.5])
        draws = np.stack([multinomial(rng, 50, p) for _ in range(100)])
        assert (draws[:, 1] == 0).all()
        assert (draws.sum(axis=-1) == 50).all()

    def test_validates_weights(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            multinomial(rng, 5, np.array([0.5, -0.1]))
        with pytest.raises(ValueError):
            multinomial(rng, 5, np.array([0.0, 0.0]))


class TestMultinomialSplit:
    @pytest.mark.parametrize("num_groups", [1, 2, 3, 4, 6, 8, 16, 32])
    @pytest.mark.parametrize("shape,axis", [((40,), 0), ((7, 9), 1)])
    def test_totals_preserved_exactly(self, num_groups, shape, axis):
        rng = np.random.default_rng(31)
        totals = np.random.default_rng(6).integers(0, 900, size=shape)
        split = multinomial_split(rng, totals, num_groups, axis=axis)
        assert split.dtype == np.int64
        assert (split >= 0).all()
        assert (split.sum(axis=axis) == totals).all()

    def test_out_path_bitwise_matches_staging_path(self):
        # The direct-into final level consumes the identical bit stream,
        # so out= and the fresh-allocation path must agree exactly.
        for num_groups in (2, 4, 8, 16):
            totals = np.random.default_rng(8).integers(0, 900, size=(57, 128))
            ref = multinomial_split(
                np.random.default_rng(42), totals, num_groups, axis=1
            )
            out = np.empty(totals.shape[:1] + (num_groups,) + totals.shape[1:])
            multinomial_split(
                np.random.default_rng(42), totals, num_groups, axis=1, out=out
            )
            assert (out == ref).all(), num_groups

    def test_float_out_holds_exact_integers(self):
        rng = np.random.default_rng(9)
        totals = np.random.default_rng(10).integers(0, 2000, size=(57, 128))
        out = np.empty((57, 16, 128))
        multinomial_split(rng, totals, 16, axis=1, out=out)
        assert (out == np.round(out)).all()
        assert (out.sum(axis=1) == totals).all()

    def test_split_law_moments_and_covariance(self):
        rng = np.random.default_rng(41)
        n, G, reps = 192, 4, 4000
        draws = np.stack(
            [multinomial_split(rng, np.array([n]), G)[:, 0] for _ in range(reps)]
        )
        mean = draws.mean(axis=0)
        assert np.abs(mean - n / G).max() < 4.0 * math.sqrt(n / G / reps) + 0.3
        var = draws.var(axis=0)
        exp_var = n * (1 / G) * (1 - 1 / G)
        assert np.abs(var / exp_var - 1.0).max() < 0.12
        cov = np.cov(draws[:, 0], draws[:, 1])[0, 1]
        assert abs(cov / (-n / G**2) - 1.0) < 0.25

    def test_marginal_chi_squared(self):
        # One slot of Multinomial(n, 1/G) is Binomial(n, 1/G) exactly.
        rng = np.random.default_rng(51)
        n, G = 160, 16
        draws = np.stack(
            [multinomial_split(rng, np.full(200, n), G)[0] for _ in range(25)]
        ).ravel()
        stat, dof = chi2_binomial(draws, n, 1.0 / G)
        assert stat < chi2_critical(dof), (stat, dof)

    def test_skewed_lane_partition_tiers(self):
        # Mixed lane sizes route through the fixed-word bulk + scattered
        # two-word / segmented tails; each tier keeps the split law.
        rng = np.random.default_rng(61)
        n = np.array([40] * 40 + [90] * 8 + [700] * 3)
        reps = 2500
        draws = np.stack([multinomial_split(rng, n, 4, axis=0) for _ in range(reps)])
        assert (draws.sum(axis=1) == n[None, :]).all()
        var = draws.var(axis=0)
        exp_var = n * 0.25 * 0.75
        for tier in (n == 40, n == 90, n == 700):
            ratio = var[:, tier].mean() / exp_var[tier].mean()
            assert abs(ratio - 1.0) < 0.1, ratio

    def test_matches_legacy_thinning_chain_in_distribution(self):
        # The tree and the sequential chain factorize the same joint law.
        n, G, reps = 128, 8, 3000
        tree = np.stack(
            [
                multinomial_split(np.random.default_rng(100 + i), np.array([n]), G)[
                    :, 0
                ]
                for i in range(reps)
            ]
        )
        chain = np.empty((reps, G))
        for i in range(reps):
            rng = np.random.default_rng(5000 + i)
            remaining = n
            for g in range(G - 1):
                taken = rng.binomial(remaining, 1.0 / (G - g))
                chain[i, g] = taken
                remaining -= taken
            chain[i, G - 1] = remaining
        assert abs(tree.mean() - chain.mean()) < 0.2
        assert abs(tree.var() / chain.var() - 1.0) < 0.1

    def test_validates_arguments(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            multinomial_split(rng, np.array([5]), 0)
        with pytest.raises(ValueError):
            multinomial_split(rng, np.array([5]), 4, out=np.empty((3, 1)))


class TestQuadAndHexKernels:
    def test_quad_split_strided_float_view(self):
        # The tree's final level writes into a moveaxis view; row writes
        # must land in the caller's memory, bitwise equal to the int64
        # staging result.
        n = np.random.default_rng(3).integers(0, 800, size=(4, 57, 128))
        ref = sampling._quad_split(np.random.default_rng(77), n.reshape(-1))
        host = np.empty((57, 4 * 4, 128))
        view = np.moveaxis(host, 1, 0).reshape((4, 4) + (57, 128))
        assert np.may_share_memory(view, host)
        sampling._quad_split(np.random.default_rng(77), n, out=view)
        assert (view.reshape(4, -1) == ref).all()

    def test_hex_split_exact_and_distributed(self):
        rng = np.random.default_rng(13)
        n = np.array([0, 3, 50, 100, 300] * 20)
        reps = 1500
        outs = np.stack(
            [
                sampling._hex_split(rng, n, np.empty((16, n.size)))
                for _ in range(reps)
            ]
        )
        assert (outs == np.round(outs)).all()
        assert (outs.sum(axis=1) == n[None, :]).all()
        big = n == 300
        var = outs.var(axis=0)[:, big]
        exp_var = 300 * (1 / 16) * (15 / 16)
        assert abs(var.mean() / exp_var - 1.0) < 0.1


class TestBackends:
    def test_numpy_backend_deterministic(self):
        n = np.arange(200) * 7 % 300
        p = np.linspace(0.01, 0.99, 200)
        a = binomial(np.random.default_rng(1), n, p, backend="numpy")
        b = binomial(np.random.default_rng(1), n, p, backend="numpy")
        c = binomial(np.random.default_rng(2), n, p, backend="numpy")
        assert (a == b).all()
        assert (a != c).any()

    def test_split_deterministic_per_seed(self):
        totals = np.arange(100) * 13 % 500
        a = multinomial_split(np.random.default_rng(5), totals, 16)
        b = multinomial_split(np.random.default_rng(5), totals, 16)
        assert (a == b).all()

    def test_resolve_backend_rejects_unknown(self):
        with pytest.raises(ValueError):
            resolve_backend("cython")

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SAMPLING_BACKEND", "numpy")
        assert sampling.default_backend() == "numpy"
        monkeypatch.setenv("REPRO_SAMPLING_BACKEND", "not-a-backend")
        with pytest.raises(ValueError):
            sampling.default_backend()

    def test_available_backends_shape(self):
        backends = available_backends()
        assert backends[-1] == "numpy"
        assert set(backends) <= set(sampling.BACKENDS)

    @pytest.mark.skipif(not HAS_NUMBA, reason="numba not importable")
    def test_numba_backend_matches_law(self):
        n = np.array([0, 5, 40, 300] * 50)
        p = np.array([0.5, 0.1, 0.5, 0.02] * 50)
        reps = 1500
        rng = np.random.default_rng(17)
        draws = np.stack(
            [binomial(rng, n, p, backend="numba") for _ in range(reps)]
        )
        assert (draws >= 0).all() and (draws <= n).all()
        mean = n * p
        sd = np.sqrt(np.maximum(n * p * (1 - p), 1e-9) / reps)
        assert (np.abs(draws.mean(axis=0) - mean) <= 4.5 * sd + 1e-9).all()
        totals = np.arange(60) * 11 % 400
        split = multinomial_split(
            np.random.default_rng(19), totals, 16, backend="numba"
        )
        assert (split.sum(axis=0) == totals).all()

    @pytest.mark.skipif(not HAS_NUMBA, reason="numba not importable")
    def test_numba_backend_deterministic(self):
        n = np.array([12, 80, 250] * 30)
        p = np.full(n.size, 0.5)
        a = binomial(np.random.default_rng(23), n, p, backend="numba")
        b = binomial(np.random.default_rng(23), n, p, backend="numba")
        assert (a == b).all()
