"""Tests for scenario popularity profiles."""

import numpy as np
import pytest

from repro.workload.scenarios import (
    CHAT,
    CODING,
    MATH,
    PRIVACY,
    SCENARIOS,
    ScenarioProfile,
    get_scenario,
    stable_seed_mix,
)


class TestStableSeedMix:
    # Pinned values: stable_seed_mix replaced hash((seed, layer)) % 2**32
    # bit-for-bit (int/tuple hashes ignore PYTHONHASHSEED), so every
    # popularity stream — and every artifact downstream — is unchanged.
    # These literals ARE the contract; they must never move.
    PINS = {
        (101, 0): 1987973359,
        (202, 3): 3896122229,
        (303, 57): 2781630260,
        (404, 93): 2870317801,
    }

    def test_pinned_values(self):
        for (seed, layer), expected in self.PINS.items():
            assert stable_seed_mix(seed, layer) == expected

    def test_matches_historical_tuple_hash(self):
        # Cross-check against the interpreter on int lanes, where builtin
        # hash() is PYTHONHASHSEED-independent.  If CPython ever changed
        # its tuple mix, the PINS above — not this test — hold the line.
        for seed in (0, 1, 101, 202, 9999):
            for layer in (0, 1, 57, 127):
                expected = hash((seed, layer)) % 2**32  # repro-lint: disable=RL004 -- the oracle this mix replaced
                assert stable_seed_mix(seed, layer) == expected

    def test_range(self):
        for parts in ((0, 0), (5,), (1, 2, 3), (2**60, 7)):
            value = stable_seed_mix(*parts)
            assert 0 <= value < 2**32

    def test_sensitive_to_every_lane(self):
        assert stable_seed_mix(1, 2) != stable_seed_mix(2, 1)
        assert stable_seed_mix(1, 2) != stable_seed_mix(1, 3)
        assert stable_seed_mix(1) != stable_seed_mix(1, 0)

    def test_rejects_out_of_range_lanes(self):
        with pytest.raises(ValueError, match="seed mix lanes"):
            stable_seed_mix(-1, 0)
        with pytest.raises(ValueError, match="seed mix lanes"):
            stable_seed_mix(1 << 61)

    def test_popularity_stream_pin(self):
        # End-to-end pin: the first probabilities of MATH layer 0 under the
        # explicit mix, equal to the pre-refactor hash()-derived stream.
        popularity = MATH.popularity(8, layer=0)
        rng = np.random.default_rng(stable_seed_mix(303, 0))
        ranks = rng.permutation(8) + 1
        base = ranks.astype(float) ** (-MATH.zipf_alpha)
        base /= base.sum()
        domain = rng.choice(8, size=1, replace=False)
        boost = np.zeros(8)
        boost[domain] = 1.0
        expected = (1 - MATH.domain_boost) * base + MATH.domain_boost * boost
        np.testing.assert_array_equal(popularity, expected)


class TestPopularity:
    def test_normalised(self):
        for scenario in SCENARIOS.values():
            popularity = scenario.popularity(128)
            assert popularity.sum() == pytest.approx(1.0)
            assert (popularity >= 0).all()

    def test_deterministic(self):
        first = MATH.popularity(128, layer=3)
        second = MATH.popularity(128, layer=3)
        np.testing.assert_array_equal(first, second)

    def test_layers_differ(self):
        assert not np.allclose(MATH.popularity(128, 0), MATH.popularity(128, 1))

    def test_scenarios_differ(self):
        assert not np.allclose(MATH.popularity(128), CODING.popularity(128))

    def test_skewed(self):
        """Domain boost concentrates mass far above uniform."""
        popularity = MATH.popularity(128)
        assert popularity.max() > 3.0 / 128

    def test_math_more_skewed_than_chat(self):
        math_top = np.sort(MATH.popularity(256))[-16:].sum()
        chat_top = np.sort(CHAT.popularity(256))[-16:].sum()
        assert math_top > chat_top

    def test_rejects_nonpositive_experts(self):
        with pytest.raises(ValueError):
            MATH.popularity(0)


class TestValidation:
    def test_domain_fraction_bounds(self):
        with pytest.raises(ValueError, match="domain_fraction"):
            ScenarioProfile("x", seed=1, domain_fraction=0.0)

    def test_domain_boost_bounds(self):
        with pytest.raises(ValueError, match="domain_boost"):
            ScenarioProfile("x", seed=1, domain_boost=1.0)

    def test_zipf_alpha_bounds(self):
        with pytest.raises(ValueError, match="zipf_alpha"):
            ScenarioProfile("x", seed=1, zipf_alpha=-0.1)


class TestRegistry:
    def test_four_scenarios(self):
        assert set(SCENARIOS) == {"chat", "coding", "math", "privacy"}

    def test_get_scenario(self):
        assert get_scenario("Math") is MATH
        assert get_scenario("PRIVACY") is PRIVACY

    def test_unknown_scenario(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            get_scenario("gaming")
