"""Tests for scenario popularity profiles."""

import numpy as np
import pytest

from repro.workload.scenarios import (
    CHAT,
    CODING,
    MATH,
    PRIVACY,
    SCENARIOS,
    ScenarioProfile,
    get_scenario,
)


class TestPopularity:
    def test_normalised(self):
        for scenario in SCENARIOS.values():
            popularity = scenario.popularity(128)
            assert popularity.sum() == pytest.approx(1.0)
            assert (popularity >= 0).all()

    def test_deterministic(self):
        first = MATH.popularity(128, layer=3)
        second = MATH.popularity(128, layer=3)
        np.testing.assert_array_equal(first, second)

    def test_layers_differ(self):
        assert not np.allclose(MATH.popularity(128, 0), MATH.popularity(128, 1))

    def test_scenarios_differ(self):
        assert not np.allclose(MATH.popularity(128), CODING.popularity(128))

    def test_skewed(self):
        """Domain boost concentrates mass far above uniform."""
        popularity = MATH.popularity(128)
        assert popularity.max() > 3.0 / 128

    def test_math_more_skewed_than_chat(self):
        math_top = np.sort(MATH.popularity(256))[-16:].sum()
        chat_top = np.sort(CHAT.popularity(256))[-16:].sum()
        assert math_top > chat_top

    def test_rejects_nonpositive_experts(self):
        with pytest.raises(ValueError):
            MATH.popularity(0)


class TestValidation:
    def test_domain_fraction_bounds(self):
        with pytest.raises(ValueError, match="domain_fraction"):
            ScenarioProfile("x", seed=1, domain_fraction=0.0)

    def test_domain_boost_bounds(self):
        with pytest.raises(ValueError, match="domain_boost"):
            ScenarioProfile("x", seed=1, domain_boost=1.0)

    def test_zipf_alpha_bounds(self):
        with pytest.raises(ValueError, match="zipf_alpha"):
            ScenarioProfile("x", seed=1, zipf_alpha=-0.1)


class TestRegistry:
    def test_four_scenarios(self):
        assert set(SCENARIOS) == {"chat", "coding", "math", "privacy"}

    def test_get_scenario(self):
        assert get_scenario("Math") is MATH
        assert get_scenario("PRIVACY") is PRIVACY

    def test_unknown_scenario(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            get_scenario("gaming")
