"""Determinism and distribution tests for the open-loop arrival processes."""

import numpy as np
import pytest

from repro.workload.arrivals import MMPPArrivals, PoissonArrivals


def drain(process, t, step):
    """Every arrival <= t, collected in fixed-size time steps."""
    times = []
    clock = 0.0
    while clock < t:
        clock = min(clock + step, t)
        times.extend(process.take_until(clock))
    return times


class TestPoissonArrivals:
    def test_fixed_seed_fixed_stream(self):
        first = PoissonArrivals(rate=50.0, seed=7).take_until(20.0)
        second = PoissonArrivals(rate=50.0, seed=7).take_until(20.0)
        assert first == second  # bitwise, not approx

    def test_seed_changes_stream(self):
        first = PoissonArrivals(rate=50.0, seed=7).take_until(5.0)
        second = PoissonArrivals(rate=50.0, seed=8).take_until(5.0)
        assert first != second

    def test_call_granularity_does_not_change_stream(self):
        # One call per 10 simulated seconds vs one per 17 ms must drain
        # the identical stream: blocks are drawn at fixed size, so the
        # RNG consumption is a pure function of the seed.
        coarse = drain(PoissonArrivals(rate=40.0, seed=3), 30.0, step=10.0)
        fine = drain(PoissonArrivals(rate=40.0, seed=3), 30.0, step=0.017)
        assert coarse == fine

    def test_arrivals_sorted_and_consumed_once(self):
        process = PoissonArrivals(rate=100.0, seed=1)
        first = process.take_until(1.0)
        second = process.take_until(2.0)
        combined = first + second
        assert combined == sorted(combined)
        assert all(t <= 1.0 for t in first)
        assert all(1.0 < t <= 2.0 for t in second)

    def test_rate_matches_long_run_mean(self):
        process = PoissonArrivals(rate=200.0, seed=5)
        arrivals = process.take_until(50.0)
        observed = len(arrivals) / 50.0
        assert observed == pytest.approx(200.0, rel=0.05)

    def test_diurnal_modulation_shifts_mass(self):
        # depth=0.9, period 10s: the first half-cycle (cos > 0) must see
        # far more arrivals than the trough around t = period/2.
        process = PoissonArrivals(
            rate=100.0, seed=9, diurnal_period_s=10.0, diurnal_depth=0.9
        )
        arrivals = np.asarray(process.take_until(200.0))
        phase = np.mod(arrivals, 10.0)
        peak = ((phase < 2.0) | (phase > 8.0)).sum()
        trough = ((phase > 3.0) & (phase < 7.0)).sum()
        assert peak > 2 * trough

    def test_diurnal_rate_preserves_mean(self):
        # The raised cosine integrates to 1 over a period, so the mean
        # rate is the base rate.
        process = PoissonArrivals(
            rate=100.0, seed=2, diurnal_period_s=5.0, diurnal_depth=0.5
        )
        arrivals = process.take_until(100.0)
        assert len(arrivals) / 100.0 == pytest.approx(100.0, rel=0.05)

    def test_peek_next_does_not_consume(self):
        process = PoissonArrivals(rate=10.0, seed=4)
        first = process.peek_next()
        assert process.peek_next() == first
        assert process.take_until(first)[0] == first

    def test_validation(self):
        with pytest.raises(ValueError):
            PoissonArrivals(rate=0.0, seed=0)
        with pytest.raises(ValueError):
            PoissonArrivals(rate=1.0, seed=0, diurnal_depth=1.0)
        with pytest.raises(ValueError):
            PoissonArrivals(rate=1.0, seed=0, diurnal_period_s=0.0)


class TestMMPPArrivals:
    def test_fixed_seed_fixed_stream(self):
        kwargs = dict(rates=[20.0, 400.0], mean_sojourn_s=2.0, seed=11)
        first = MMPPArrivals(**kwargs).take_until(30.0)
        second = MMPPArrivals(**kwargs).take_until(30.0)
        assert first == second

    def test_call_granularity_does_not_change_stream(self):
        coarse = drain(
            MMPPArrivals([30.0, 300.0], mean_sojourn_s=1.0, seed=6), 20.0, 5.0
        )
        fine = drain(
            MMPPArrivals([30.0, 300.0], mean_sojourn_s=1.0, seed=6), 20.0, 0.05
        )
        assert coarse == fine

    def test_mean_rate_property(self):
        process = MMPPArrivals([10.0, 90.0], mean_sojourn_s=1.0, seed=0)
        assert process.mean_rate == pytest.approx(50.0)

    def test_long_run_rate_near_mean(self):
        process = MMPPArrivals([50.0, 150.0], mean_sojourn_s=0.5, seed=13)
        arrivals = process.take_until(100.0)
        assert len(arrivals) / 100.0 == pytest.approx(100.0, rel=0.15)

    def test_burstier_than_poisson(self):
        # Interarrival coefficient of variation: Poisson has CV = 1; a
        # strongly bimodal MMPP must exceed it (burst clusters).
        mmpp = MMPPArrivals([5.0, 500.0], mean_sojourn_s=3.0, seed=17)
        gaps = np.diff(np.asarray(mmpp.take_until(300.0)))
        cv = gaps.std() / gaps.mean()
        assert cv > 1.3

    def test_monotone_and_consumed_once(self):
        process = MMPPArrivals([10.0, 100.0], mean_sojourn_s=1.0, seed=2)
        first = process.take_until(3.0)
        second = process.take_until(6.0)
        combined = first + second
        assert combined == sorted(combined)
        assert not (set(first) & set(second))

    def test_validation(self):
        with pytest.raises(ValueError):
            MMPPArrivals([10.0], mean_sojourn_s=1.0, seed=0)
        with pytest.raises(ValueError):
            MMPPArrivals([10.0, -1.0], mean_sojourn_s=1.0, seed=0)
        with pytest.raises(ValueError):
            MMPPArrivals([10.0, 20.0], mean_sojourn_s=0.0, seed=0)
        with pytest.raises(ValueError):
            MMPPArrivals([10.0, 20.0], mean_sojourn_s=1.0, seed=0, start_state=5)
