"""Tests for scenario mixers."""

import numpy as np
import pytest

from repro.workload.arrivals import AzureLikeMixer, ConstantMixer
from repro.workload.scenarios import CHAT, CODING, MATH, PRIVACY

ALL = [CHAT, CODING, MATH, PRIVACY]


class TestConstantMixer:
    def test_defaults_to_uniform(self):
        mixer = ConstantMixer(ALL)
        np.testing.assert_allclose(mixer.weights(0), [0.25] * 4)

    def test_fixed_weights_normalised(self):
        mixer = ConstantMixer([MATH, CHAT], fixed_weights=[3.0, 1.0])
        np.testing.assert_allclose(mixer.weights(10), [0.75, 0.25])

    def test_single_scenario(self):
        mixer = ConstantMixer([MATH])
        assert mixer.weights(0).tolist() == [1.0]

    def test_weights_constant_over_time(self):
        mixer = ConstantMixer(ALL)
        np.testing.assert_array_equal(mixer.weights(0), mixer.weights(1000))

    def test_rejects_mismatched_weights(self):
        with pytest.raises(ValueError):
            ConstantMixer(ALL, fixed_weights=[1.0])

    def test_rejects_negative_weights(self):
        with pytest.raises(ValueError):
            ConstantMixer([MATH], fixed_weights=[-1.0])

    def test_requires_scenarios(self):
        with pytest.raises(ValueError):
            ConstantMixer([])

    def test_popularity_mixture_normalised(self):
        mixer = ConstantMixer(ALL)
        popularity = mixer.popularity(128, layer=0, iteration=0)
        assert popularity.sum() == pytest.approx(1.0)


class TestAzureLikeMixer:
    def test_weights_normalised_and_positive(self):
        mixer = AzureLikeMixer(ALL, period_iters=100)
        for iteration in range(0, 300, 17):
            weights = mixer.weights(iteration)
            assert weights.sum() == pytest.approx(1.0)
            assert (weights >= 0).all()

    def test_composition_drifts(self):
        mixer = AzureLikeMixer(ALL, period_iters=200, noise=0.0)
        early = mixer.weights(0)
        later = mixer.weights(100)
        assert not np.allclose(early, later, atol=0.05)

    def test_cyclic_without_noise(self):
        mixer = AzureLikeMixer(ALL, period_iters=100, noise=0.0)
        np.testing.assert_allclose(mixer.weights(0), mixer.weights(100), atol=1e-9)

    def test_phase_shift_rotates_dominance(self):
        mixer = AzureLikeMixer(ALL, period_iters=400, noise=0.0)
        dominant = {int(np.argmax(mixer.weights(t))) for t in range(0, 400, 10)}
        assert len(dominant) == 4  # every scenario leads at some point

    def test_rejects_bad_period(self):
        with pytest.raises(ValueError):
            AzureLikeMixer(ALL, period_iters=0)

    def test_rejects_bad_noise(self):
        with pytest.raises(ValueError):
            AzureLikeMixer(ALL, noise=1.5)


class TestWeightsBatchScan:
    """The vectorized AR(1) scan against sequential weights() calls.

    The scan reassociates the recursion's floating-point sums (closed
    form instead of layer-by-layer), so equality is ~1e-12 relative, not
    bitwise; the RNG stream is consumed in exactly the sequential order.
    """

    @pytest.mark.parametrize("num_layers", [1, 3, 58, 300])
    def test_matches_sequential_weights(self, num_layers):
        batched = AzureLikeMixer(ALL, period_iters=60, seed=3)
        sequential = AzureLikeMixer(ALL, period_iters=60, seed=3)
        got = batched.weights_batch(iteration=5, num_layers=num_layers)
        want = np.stack(
            [sequential.weights(5) for _ in range(num_layers)]
        )
        np.testing.assert_allclose(got, want, rtol=1e-12, atol=0.0)
        np.testing.assert_allclose(
            batched._noise_state, sequential._noise_state, rtol=1e-12, atol=0.0
        )

    def test_rng_stream_stays_aligned(self):
        batched = AzureLikeMixer(ALL, period_iters=60, seed=3)
        sequential = AzureLikeMixer(ALL, period_iters=60, seed=3)
        batched.weights_batch(iteration=0, num_layers=7)
        for _ in range(7):
            sequential.weights(0)
        assert batched._rng.integers(1 << 30) == sequential._rng.integers(1 << 30)

    def test_successive_batches_chain_the_state(self):
        """Two batch calls equal one long sequential run — the carried
        noise state chains across calls (and across scan blocks, since
        300 > _SCAN_BLOCK)."""
        batched = AzureLikeMixer(ALL, period_iters=60, seed=9)
        sequential = AzureLikeMixer(ALL, period_iters=60, seed=9)
        first = batched.weights_batch(iteration=2, num_layers=300)
        second = batched.weights_batch(iteration=2, num_layers=40)
        want = np.stack([sequential.weights(2) for _ in range(340)])
        got = np.concatenate([first, second])
        np.testing.assert_allclose(got, want, rtol=1e-11, atol=0.0)

    def test_noise_free_batch_is_broadcast(self):
        mixer = AzureLikeMixer(ALL, period_iters=60, noise=0.0)
        batch = mixer.weights_batch(iteration=4, num_layers=5)
        np.testing.assert_array_equal(batch, np.broadcast_to(batch[0], batch.shape))
        np.testing.assert_array_equal(batch[0], mixer.weights(4))
