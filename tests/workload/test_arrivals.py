"""Tests for scenario mixers."""

import numpy as np
import pytest

from repro.workload.arrivals import AzureLikeMixer, ConstantMixer
from repro.workload.scenarios import CHAT, CODING, MATH, PRIVACY

ALL = [CHAT, CODING, MATH, PRIVACY]


class TestConstantMixer:
    def test_defaults_to_uniform(self):
        mixer = ConstantMixer(ALL)
        np.testing.assert_allclose(mixer.weights(0), [0.25] * 4)

    def test_fixed_weights_normalised(self):
        mixer = ConstantMixer([MATH, CHAT], fixed_weights=[3.0, 1.0])
        np.testing.assert_allclose(mixer.weights(10), [0.75, 0.25])

    def test_single_scenario(self):
        mixer = ConstantMixer([MATH])
        assert mixer.weights(0).tolist() == [1.0]

    def test_weights_constant_over_time(self):
        mixer = ConstantMixer(ALL)
        np.testing.assert_array_equal(mixer.weights(0), mixer.weights(1000))

    def test_rejects_mismatched_weights(self):
        with pytest.raises(ValueError):
            ConstantMixer(ALL, fixed_weights=[1.0])

    def test_rejects_negative_weights(self):
        with pytest.raises(ValueError):
            ConstantMixer([MATH], fixed_weights=[-1.0])

    def test_requires_scenarios(self):
        with pytest.raises(ValueError):
            ConstantMixer([])

    def test_popularity_mixture_normalised(self):
        mixer = ConstantMixer(ALL)
        popularity = mixer.popularity(128, layer=0, iteration=0)
        assert popularity.sum() == pytest.approx(1.0)


class TestAzureLikeMixer:
    def test_weights_normalised_and_positive(self):
        mixer = AzureLikeMixer(ALL, period_iters=100)
        for iteration in range(0, 300, 17):
            weights = mixer.weights(iteration)
            assert weights.sum() == pytest.approx(1.0)
            assert (weights >= 0).all()

    def test_composition_drifts(self):
        mixer = AzureLikeMixer(ALL, period_iters=200, noise=0.0)
        early = mixer.weights(0)
        later = mixer.weights(100)
        assert not np.allclose(early, later, atol=0.05)

    def test_cyclic_without_noise(self):
        mixer = AzureLikeMixer(ALL, period_iters=100, noise=0.0)
        np.testing.assert_allclose(mixer.weights(0), mixer.weights(100), atol=1e-9)

    def test_phase_shift_rotates_dominance(self):
        mixer = AzureLikeMixer(ALL, period_iters=400, noise=0.0)
        dominant = {int(np.argmax(mixer.weights(t))) for t in range(0, 400, 10)}
        assert len(dominant) == 4  # every scenario leads at some point

    def test_rejects_bad_period(self):
        with pytest.raises(ValueError):
            AzureLikeMixer(ALL, period_iters=0)

    def test_rejects_bad_noise(self):
        with pytest.raises(ValueError):
            AzureLikeMixer(ALL, noise=1.5)
