"""Tests for scenario mixers."""

import numpy as np
import pytest

from repro.workload.mixers import AzureLikeMixer, ConstantMixer
from repro.workload.scenarios import CHAT, CODING, MATH, PRIVACY

ALL = [CHAT, CODING, MATH, PRIVACY]


class TestConstantMixer:
    def test_defaults_to_uniform(self):
        mixer = ConstantMixer(ALL)
        np.testing.assert_allclose(mixer.weights(0), [0.25] * 4)

    def test_fixed_weights_normalised(self):
        mixer = ConstantMixer([MATH, CHAT], fixed_weights=[3.0, 1.0])
        np.testing.assert_allclose(mixer.weights(10), [0.75, 0.25])

    def test_single_scenario(self):
        mixer = ConstantMixer([MATH])
        assert mixer.weights(0).tolist() == [1.0]

    def test_weights_constant_over_time(self):
        mixer = ConstantMixer(ALL)
        np.testing.assert_array_equal(mixer.weights(0), mixer.weights(1000))

    def test_rejects_mismatched_weights(self):
        with pytest.raises(ValueError):
            ConstantMixer(ALL, fixed_weights=[1.0])

    def test_rejects_negative_weights(self):
        with pytest.raises(ValueError):
            ConstantMixer([MATH], fixed_weights=[-1.0])

    def test_requires_scenarios(self):
        with pytest.raises(ValueError):
            ConstantMixer([])

    def test_popularity_mixture_normalised(self):
        mixer = ConstantMixer(ALL)
        popularity = mixer.popularity(128, layer=0, iteration=0)
        assert popularity.sum() == pytest.approx(1.0)


class TestAzureLikeMixer:
    def test_weights_normalised_and_positive(self):
        mixer = AzureLikeMixer(ALL, period_iters=100)
        for iteration in range(0, 300, 17):
            weights = mixer.weights(iteration)
            assert weights.sum() == pytest.approx(1.0)
            assert (weights >= 0).all()

    def test_composition_drifts(self):
        mixer = AzureLikeMixer(ALL, period_iters=200, noise=0.0)
        early = mixer.weights(0)
        later = mixer.weights(100)
        assert not np.allclose(early, later, atol=0.05)

    def test_cyclic_without_noise(self):
        mixer = AzureLikeMixer(ALL, period_iters=100, noise=0.0)
        np.testing.assert_allclose(mixer.weights(0), mixer.weights(100), atol=1e-9)

    def test_phase_shift_rotates_dominance(self):
        mixer = AzureLikeMixer(ALL, period_iters=400, noise=0.0)
        dominant = {int(np.argmax(mixer.weights(t))) for t in range(0, 400, 10)}
        assert len(dominant) == 4  # every scenario leads at some point

    def test_rejects_bad_period(self):
        with pytest.raises(ValueError):
            AzureLikeMixer(ALL, period_iters=0)

    def test_rejects_bad_noise(self):
        with pytest.raises(ValueError):
            AzureLikeMixer(ALL, noise=1.5)


class TestWeightsBatchScan:
    """The vectorized AR(1) scan against sequential weights() calls.

    The scan reassociates the recursion's floating-point sums (closed
    form instead of layer-by-layer), so equality is ~1e-12 relative, not
    bitwise; the RNG stream is consumed in exactly the sequential order.
    """

    @pytest.mark.parametrize("num_layers", [1, 3, 58, 300])
    def test_matches_sequential_weights(self, num_layers):
        batched = AzureLikeMixer(ALL, period_iters=60, seed=3)
        sequential = AzureLikeMixer(ALL, period_iters=60, seed=3)
        got = batched.weights_batch(iteration=5, num_layers=num_layers)
        want = np.stack(
            [sequential.weights(5) for _ in range(num_layers)]
        )
        np.testing.assert_allclose(got, want, rtol=1e-12, atol=0.0)
        np.testing.assert_allclose(
            batched._noise_state, sequential._noise_state, rtol=1e-12, atol=0.0
        )

    def test_rng_stream_stays_aligned(self):
        batched = AzureLikeMixer(ALL, period_iters=60, seed=3)
        sequential = AzureLikeMixer(ALL, period_iters=60, seed=3)
        batched.weights_batch(iteration=0, num_layers=7)
        for _ in range(7):
            sequential.weights(0)
        assert batched._rng.integers(1 << 30) == sequential._rng.integers(1 << 30)

    def test_successive_batches_chain_the_state(self):
        """Two batch calls equal one long sequential run — the carried
        noise state chains across calls (and across scan blocks, since
        300 > _SCAN_BLOCK)."""
        batched = AzureLikeMixer(ALL, period_iters=60, seed=9)
        sequential = AzureLikeMixer(ALL, period_iters=60, seed=9)
        first = batched.weights_batch(iteration=2, num_layers=300)
        second = batched.weights_batch(iteration=2, num_layers=40)
        want = np.stack([sequential.weights(2) for _ in range(340)])
        got = np.concatenate([first, second])
        np.testing.assert_allclose(got, want, rtol=1e-11, atol=0.0)

    def test_noise_free_batch_is_broadcast(self):
        mixer = AzureLikeMixer(ALL, period_iters=60, noise=0.0)
        batch = mixer.weights_batch(iteration=4, num_layers=5)
        np.testing.assert_array_equal(batch, np.broadcast_to(batch[0], batch.shape))
        np.testing.assert_array_equal(batch[0], mixer.weights(4))


class TestRngDeterminism:
    """Pinned stream contracts the request-level front end will rely on."""

    def test_same_seed_same_weight_trace(self):
        a = AzureLikeMixer(ALL, period_iters=60, noise=0.05, seed=7)
        b = AzureLikeMixer(ALL, period_iters=60, noise=0.05, seed=7)
        trace_a = np.stack([a.weights(t) for t in range(50)])
        trace_b = np.stack([b.weights(t) for t in range(50)])
        np.testing.assert_array_equal(trace_a, trace_b)

    def test_different_seeds_diverge(self):
        a = AzureLikeMixer(ALL, noise=0.05, seed=1)
        b = AzureLikeMixer(ALL, noise=0.05, seed=2)
        assert (a.weights(0) != b.weights(0)).any()

    def test_batch_consumes_same_stream_as_sequential(self):
        # One weights_batch(t, L) call must leave the RNG where L
        # sequential weights(t) calls would.
        a = AzureLikeMixer(ALL, noise=0.05, seed=3)
        b = AzureLikeMixer(ALL, noise=0.05, seed=3)
        a.weights_batch(0, 8)
        for _ in range(8):
            b.weights(0)
        np.testing.assert_array_equal(a.weights(1), b.weights(1))

    def test_noise_free_mixer_is_rng_free(self):
        a = AzureLikeMixer(ALL, noise=0.0, seed=5)
        before = a._rng.bit_generator.state["state"]["state"]
        a.weights(3)
        a.weights_batch(4, 16)
        after = a._rng.bit_generator.state["state"]["state"]
        assert before == after


class TestRateMoments:
    def test_period_average_rate_is_uniform(self):
        # Phase-shifted raised cosines average to equal scenario shares
        # over a full period — the long-run "request rate" per scenario.
        mixer = AzureLikeMixer(ALL, period_iters=64, noise=0.0)
        trace = np.stack([mixer.weights(t) for t in range(64)])
        np.testing.assert_allclose(
            trace.mean(axis=0), np.full(len(ALL), 0.25), atol=0.02
        )

    def test_noise_free_weights_are_periodic(self):
        mixer = AzureLikeMixer(ALL, period_iters=48, noise=0.0)
        np.testing.assert_allclose(mixer.weights(5), mixer.weights(53))

    def test_ar1_noise_state_matches_stationary_moments(self):
        # state' = 0.9 s + 0.1 z, z ~ N(0, noise^2): stationary mean 0,
        # variance noise^2 / 19.
        mixer = AzureLikeMixer(ALL, period_iters=60, noise=0.2, seed=11)
        states = np.empty((4000, len(ALL)))
        for t in range(4000):
            mixer.weights(t)
            states[t] = mixer._noise_state
        warm = states[200:]
        assert np.abs(warm.mean(axis=0)).max() < 0.01
        np.testing.assert_allclose(
            warm.var(axis=0), 0.2**2 / 19.0, rtol=0.15
        )

    def test_interval_drift_is_slow(self):
        # Successive weight vectors move smoothly: the per-iteration step
        # stays a small fraction of the weight scale, the "slow drift"
        # property the gating warm-up depends on.
        mixer = AzureLikeMixer(ALL, period_iters=600, noise=0.05, seed=13)
        trace = np.stack([mixer.weights(t) for t in range(200)])
        steps = np.abs(np.diff(trace, axis=0)).max(axis=1)
        assert steps.max() < 0.05
        assert steps.mean() < 0.01

    def test_constant_mixer_rate_is_exact(self):
        mixer = ConstantMixer(ALL, fixed_weights=[4, 2, 1, 1])
        trace = np.stack([mixer.weights(t) for t in range(10)])
        np.testing.assert_array_equal(
            trace, np.tile([0.5, 0.25, 0.125, 0.125], (10, 1))
        )


class TestDeprecatedArrivalsShim:
    """The mixers moved out of ``repro.workload.arrivals``; the old import
    path must keep working behind a DeprecationWarning."""

    def test_old_attribute_access_warns_and_resolves(self):
        from repro.workload import arrivals, mixers

        for name in ("ScenarioMixer", "ConstantMixer", "AzureLikeMixer"):
            with pytest.deprecated_call(match="moved to"):
                shimmed = getattr(arrivals, name)
            assert shimmed is getattr(mixers, name)

    def test_old_from_import_still_constructs(self):
        with pytest.deprecated_call():
            from repro.workload.arrivals import ConstantMixer as Shimmed

        mixer = Shimmed(ALL, fixed_weights=[1, 1, 1, 1])
        np.testing.assert_array_equal(mixer.weights(0), np.full(4, 0.25))

    def test_unknown_attribute_still_raises(self):
        from repro.workload import arrivals

        with pytest.raises(AttributeError):
            arrivals.does_not_exist
