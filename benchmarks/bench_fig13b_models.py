"""Fig. 13b, ER-Mapping across the model zoo.

Thin wrapper over the ``fig13b_models`` spec in
``repro.experiments.figures.fig13b`` (see its docstring for the paper
context); run standalone with ``python -m repro.experiments run fig13b``.
"""

from helpers import run_and_emit


def test_fig13b_models(benchmark):
    run_and_emit(benchmark, "fig13b_models")
