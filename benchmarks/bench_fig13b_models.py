"""Fig. 13b: ER-Mapping across the model zoo.

6x6 WSC vs 4-node DGX, 256 tokens per group.  The paper's shape: pure WSC
beats DGX on communication everywhere (~56% average); ER-Mapping adds up
to ~35% more, with the benefit scaling with the number of activated
experts — Mixtral (top-2) gains least and can even regress.
"""

from helpers import comm_breakdown, emit, us

from repro.analysis.report import format_table
from repro.models import MODEL_REGISTRY
from repro.systems import build_dgx, build_wsc


def build_table():
    rows = []
    for model in MODEL_REGISTRY.values():
        dgx = build_dgx(model, num_nodes=4, tp=4)
        wsc = build_wsc(model, 6, tp=4, mapping="baseline")
        er = build_wsc(model, 6, tp=4, mapping="er")
        dgx_ar, dgx_a2a = comm_breakdown(dgx)
        wsc_ar, wsc_a2a = comm_breakdown(wsc)
        er_ar, er_a2a = comm_breakdown(er)
        dgx_total = dgx_ar + dgx_a2a
        wsc_total = wsc_ar + wsc_a2a
        er_total = er_ar + er_a2a
        rows.append(
            [
                model.name,
                f"{us(dgx_total):.1f}us",
                f"{us(wsc_total):.1f}us",
                f"{us(er_total):.1f}us",
                f"{(1 - wsc_total / dgx_total) * 100:.0f}%",
                f"{(1 - er_total / wsc_total) * 100:.0f}%",
            ]
        )
    return format_table(
        [
            "Model",
            "DGX comm",
            "WSC comm",
            "WSC+ER comm",
            "WSC vs DGX",
            "ER vs WSC",
        ],
        rows,
    )


def test_fig13b_models(benchmark):
    table = benchmark.pedantic(build_table, rounds=1, iterations=1)
    emit("fig13b_models", table)
