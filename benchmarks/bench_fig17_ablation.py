"""Fig. 17: the full ablation — multi-WSC cluster vs NVL72 supernode.

Eight configurations per model, stacking the paper's mechanisms: NVL72
(with and without balancing over its NVMe side channel), then the 256-die
4x(8x8) WSC under baseline mapping, flat ER, HER, and HER plus each
balancer.  Reported: per-layer all-to-all, MoE time, exposed migration,
total iteration latency relative to NVL72, and per-device throughput.

The paper's shape: ER then HER remove the communication bottleneck;
topology-aware balancing cuts migration overhead; non-invasive balancing
eliminates it; the final system beats NVL72 per-device (paper: ~39%).
"""

from helpers import emit

from repro.analysis.report import format_table
from repro.balancer import (
    BalancerConfig,
    GreedyBalancer,
    NoBalancer,
    NonInvasiveBalancer,
    TopologyAwareBalancer,
)
from repro.engine import EngineConfig, ServingConfig, ServingSimulator
from repro.models import DEEPSEEK_V3, QWEN3_235B
from repro.systems import build_multi_wsc, build_nvl72
from repro.workload import AzureLikeMixer, CHAT, CODING, MATH, PRIVACY, GatingSimulator

ITERATIONS = 10
SKIP = 3
TOKENS_PER_DEVICE = 64


def run_config(model, system, balancer_cls, side_channel=False, seed=29):
    tokens_per_group = TOKENS_PER_DEVICE * system.num_devices // system.mapping.dp
    workload = GatingSimulator(
        model,
        num_groups=system.mapping.dp,
        tokens_per_group=tokens_per_group,
        mixer=AzureLikeMixer([CHAT, CODING, MATH, PRIVACY], period_iters=30),
        num_layers=1,
        adaptation=0.3,
        seed=seed,
    )
    simulator = ServingSimulator(
        system.device,
        model,
        system.mapping,
        workload,
        balancer_cls,
        engine_config=EngineConfig(tokens_per_group=tokens_per_group),
        serving_config=ServingConfig(
            num_iterations=ITERATIONS,
            warmup_iters=2,
            beta_iters=3,
            shadow_slots=2,
            migration_side_channel=side_channel,
        ),
        # Short runs need larger per-trigger plans to converge the placement.
        balancer_config=BalancerConfig(max_migrations_per_trigger=16),
    )
    return simulator.run()


def build_table(model):
    configs = [
        ("NVL72", build_nvl72(model, tp=4), NoBalancer, False),
        ("NVL72 + Balance", build_nvl72(model, tp=4), GreedyBalancer, True),
        ("WSC", build_multi_wsc(model, 4, 8, tp=4, mapping="baseline"), NoBalancer, False),
        ("WSC + ER", build_multi_wsc(model, 4, 8, tp=4, mapping="er"), NoBalancer, False),
        ("WSC + HER", build_multi_wsc(model, 4, 8, tp=4, mapping="her"), NoBalancer, False),
        ("WSC + HER + Greedy", build_multi_wsc(model, 4, 8, tp=4, mapping="her"), GreedyBalancer, False),
        ("WSC + HER + Topology", build_multi_wsc(model, 4, 8, tp=4, mapping="her"), TopologyAwareBalancer, False),
        ("WSC + HER + Non-invasive", build_multi_wsc(model, 4, 8, tp=4, mapping="her"), NonInvasiveBalancer, False),
    ]
    rows = []
    reference = None
    for name, system, balancer_cls, side_channel in configs:
        trace = run_config(model, system, balancer_cls, side_channel)
        per_device_latency = trace.mean_latency(SKIP)
        throughput = TOKENS_PER_DEVICE * model.num_sparse_layers / per_device_latency
        if reference is None:
            reference = per_device_latency
        rows.append(
            [
                name,
                f"{trace.mean_component('alltoall', SKIP) * 1e6:.1f}us",
                f"{trace.mean_component('moe', SKIP) * 1e6:.1f}us",
                f"{trace.migration_overhead_fraction(SKIP) * 100:.1f}%",
                f"{per_device_latency / reference:.2f}",
                f"{throughput:.0f} tok/s/dev",
            ]
        )
    return format_table(
        [
            "Configuration",
            "All-to-all/layer",
            "MoE/layer",
            "Migration ovh",
            "Rel. latency",
            "Per-device perf",
        ],
        rows,
    )


def test_fig17_qwen3(benchmark):
    table = benchmark.pedantic(build_table, args=(QWEN3_235B,), rounds=1, iterations=1)
    emit("fig17_ablation_qwen3", table)


def test_fig17_deepseek_v3(benchmark):
    table = benchmark.pedantic(
        build_table, args=(DEEPSEEK_V3,), rounds=1, iterations=1
    )
    emit("fig17_ablation_deepseek_v3", table)
