"""Fig. 17, the full ablation: multi-WSC cluster vs NVL72 supernode.

Thin wrapper over the ``fig17_ablation_*`` specs in
``repro.experiments.figures.fig17`` (see its docstring for the paper
context); run standalone with ``python -m repro.experiments run fig17``.
"""

from helpers import run_and_emit


def test_fig17_qwen3(benchmark):
    run_and_emit(benchmark, "fig17_ablation_qwen3")


def test_fig17_deepseek_v3(benchmark):
    run_and_emit(benchmark, "fig17_ablation_deepseek_v3")
