"""Fig. 16, balancing impact across scheduling modes and scenarios.

Thin wrapper over the ``fig16_balancing_*`` specs in
``repro.experiments.figures.fig16`` (see its docstring for the paper
context); run standalone with ``python -m repro.experiments run fig16``.
"""

from helpers import run_and_emit


def test_fig16_qwen3(benchmark):
    run_and_emit(benchmark, "fig16_balancing_qwen3")


def test_fig16_deepseek_v3(benchmark):
    run_and_emit(benchmark, "fig16_balancing_deepseek_v3")
