"""Fig. 16: balancing impact across scheduling modes and scenarios.

Prefill-only / decode-only / hybrid scheduling x Math-only / mixed
workloads, for Qwen3 and DeepSeek-V3 on an 8x8 wafer.  The paper's shape:
fixed scenarios stabilise and need few migrations; mixed scenarios trigger
frequent migrations whose overhead hits decode/hybrid hardest (short
iterations); topology-aware balancing cuts that overhead (~2.6x) and
non-invasive balancing removes it while delivering the best load ratio.
"""

from helpers import emit

from repro.analysis.report import format_table
from repro.balancer import (
    GreedyBalancer,
    NoBalancer,
    NonInvasiveBalancer,
    TopologyAwareBalancer,
)
from repro.engine import EngineConfig, ServingConfig, ServingSimulator
from repro.models import DEEPSEEK_V3, QWEN3_235B
from repro.systems import build_wsc
from repro.workload import AzureLikeMixer, CHAT, CODING, MATH, PRIVACY, GatingSimulator

ITERATIONS = 60
SKIP = 20

SCHEDULES = {
    # (tokens_per_group, context_len, decode)
    "Prefill-only": (1024, 4096, False),
    "Decode-only": (64, 4096, True),
    "Hybrid": (256, 4096, True),
}

STRATEGIES = [
    ("None", NoBalancer),
    ("Greedy", GreedyBalancer),
    ("Topology", TopologyAwareBalancer),
    ("Non-invasive", NonInvasiveBalancer),
]


def run_case(model, schedule, mixed, balancer_cls, seed=23):
    tokens, context, decode = SCHEDULES[schedule]
    system = build_wsc(model, side=8, tp=4, mapping="er")
    if mixed:
        mixer = AzureLikeMixer([CHAT, CODING, MATH, PRIVACY], period_iters=40)
    else:
        mixer = MATH
    workload = GatingSimulator(
        model,
        num_groups=system.mapping.dp,
        tokens_per_group=tokens,
        mixer=mixer,
        num_layers=2,
        seed=seed,
    )
    simulator = ServingSimulator(
        system.device,
        model,
        system.mapping,
        workload,
        balancer_cls,
        engine_config=EngineConfig(
            tokens_per_group=tokens, context_len=context, decode=decode
        ),
        serving_config=ServingConfig(num_iterations=ITERATIONS),
    )
    return simulator.run()


def build_table(model):
    rows = []
    for schedule in SCHEDULES:
        for mixed in (False, True):
            scenario = "Mixed" if mixed else "Math-only"
            for name, cls in STRATEGIES:
                trace = run_case(model, schedule, mixed, cls)
                rows.append(
                    [
                        schedule,
                        scenario,
                        name,
                        f"{trace.mean_component('alltoall', SKIP) * 1e6:.1f}us",
                        f"{trace.mean_component('moe', SKIP) * 1e6:.1f}us",
                        f"{trace.migration_overhead_fraction(SKIP) * 100:.1f}%",
                        f"{trace.mean_load_ratio(SKIP):.2f}",
                    ]
                )
    return format_table(
        [
            "Schedule",
            "Scenario",
            "Balancer",
            "All-to-all",
            "MoE time",
            "Migration ovh",
            "Max/Avg",
        ],
        rows,
    )


def test_fig16_qwen3(benchmark):
    table = benchmark.pedantic(build_table, args=(QWEN3_235B,), rounds=1, iterations=1)
    emit("fig16_balancing_qwen3", table)


def test_fig16_deepseek_v3(benchmark):
    table = benchmark.pedantic(
        build_table, args=(DEEPSEEK_V3,), rounds=1, iterations=1
    )
    emit("fig16_balancing_deepseek_v3", table)
