"""Fig. 12, expert load traces per scenario.

Thin wrapper over the ``fig12_load_traces`` spec in
``repro.experiments.figures.fig12`` (see its docstring for the paper
context); run standalone with ``python -m repro.experiments run fig12``.
"""

from helpers import run_and_emit


def test_fig12_load_traces(benchmark):
    run_and_emit(benchmark, "fig12_load_traces")
