"""Fig. 14b: justifying the retention of all-gather.

With AG every FTD holds all tokens, so ER's all-to-all fetches stay inside
the tile; without AG each shard must come from its owner across the mesh.
The paper's shape: AG doubles the (cheap) all-reduce but cuts the
(expensive) all-to-all, improving totals by ~17% on average.
"""

from helpers import comm_breakdown, emit, us

from repro.analysis.report import format_table
from repro.models import DBRX, MIXTRAL_8X22B, QWEN3_235B
from repro.systems import build_wsc


def build_table():
    rows = []
    for model in (DBRX, MIXTRAL_8X22B, QWEN3_235B):
        with_ag = build_wsc(model, 6, tp=4, mapping="er", retain_allgather=True)
        without_ag = build_wsc(model, 6, tp=4, mapping="er", retain_allgather=False)
        ag_ar, ag_a2a = comm_breakdown(with_ag)
        no_ar, no_a2a = comm_breakdown(without_ag)
        ag_total = ag_ar + ag_a2a
        no_total = no_ar + no_a2a
        rows.append(
            [
                model.name,
                f"{us(no_ar):.1f} / {us(ag_ar):.1f}us",
                f"{us(no_a2a):.1f} / {us(ag_a2a):.1f}us",
                f"{(1 - ag_total / no_total) * 100:.0f}%",
            ]
        )
    return format_table(
        ["Model", "AR without/with AG", "A2A without/with AG", "AG improvement"],
        rows,
    )


def test_fig14b_allgather(benchmark):
    table = benchmark.pedantic(build_table, rounds=1, iterations=1)
    emit("fig14b_allgather", table)
