"""Fig. 14b, justifying the retention of all-gather.

Thin wrapper over the ``fig14b_allgather`` spec in
``repro.experiments.figures.fig14b`` (see its docstring for the paper
context); run standalone with ``python -m repro.experiments run fig14b``.
"""

from helpers import run_and_emit


def test_fig14b_allgather(benchmark):
    run_and_emit(benchmark, "fig14b_allgather")
