"""Sampling-kernel wall-clock microbenchmark (kernel speed, not model perf).

Thin wrapper over the uncacheable ``sampling_speed`` spec in
``repro.experiments.figures.sampling_speed``: the batched binomial /
multinomial-split kernels on the 58-layer serving demand-resolution shape
(57 x 64 lanes into 16 DP groups), crossed with every importable backend,
against the scalar ``Generator.binomial`` and legacy thinning-chain
baselines, plus the hex-vs-quad 16-way split comparison.  Run standalone
with ``python -m repro.experiments run sampling_speed``, or directly —

    python benchmarks/bench_sampling.py --repeats 50

— for quick sweeps (``--repeats`` seeds ``REPRO_SAMPLING_BENCH_REPEATS``
before the spec module loads; reduced runs write the untracked
``BENCH_sampling.smoke.json`` instead of the tracked trajectory record).
"""

from helpers import run_and_emit


def test_sampling_speed(benchmark):
    run_and_emit(benchmark, "sampling_speed")


def main() -> None:
    import argparse
    import os

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--repeats",
        type=int,
        help="timed kernel calls per case (default: the spec's 200)",
    )
    args = parser.parse_args()
    # The spec reads its grid from the environment at import time, so the
    # override must land before repro.experiments pulls it in.
    if args.repeats:
        os.environ["REPRO_SAMPLING_BENCH_REPEATS"] = str(args.repeats)

    from repro.experiments import Runner, get_spec

    text = Runner(jobs=1, use_cache=False).run_text(get_spec("sampling_speed"))
    print(text)


if __name__ == "__main__":
    main()
