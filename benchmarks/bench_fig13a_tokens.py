"""Fig. 13a, WSC-over-DGX communication improvement vs token count.

Thin wrapper over the ``fig13a_token_sweep`` spec in
``repro.experiments.figures.fig13a`` (see its docstring for the paper
context); run standalone with ``python -m repro.experiments run fig13a``.
"""

from helpers import run_and_emit


def test_fig13a_tokens(benchmark):
    run_and_emit(benchmark, "fig13a_token_sweep")
