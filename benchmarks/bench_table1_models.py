"""Table I, parameters of the evaluation MoE models.

Thin wrapper over the ``table1_models`` spec in
``repro.experiments.figures.table1`` (see its docstring for the paper
context); run standalone with ``python -m repro.experiments run table1``.
"""

from helpers import run_and_emit


def test_table1(benchmark):
    run_and_emit(benchmark, "table1_models")
