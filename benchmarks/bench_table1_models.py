"""Table I: parameters of the evaluation MoE models."""

from helpers import emit

from repro.analysis.report import format_table
from repro.models import MODEL_REGISTRY


def build_table():
    rows = []
    for config in MODEL_REGISTRY.values():
        rows.append(
            [
                config.name,
                f"{config.total_params_b:.0f}B",
                f"{config.num_sparse_layers} / {config.num_layers}",
                f"{config.expert_size_mb:.0f}MB",
                f"{config.experts_per_token} / {config.num_experts}",
            ]
        )
    return format_table(
        ["Model", "Size", "Sparse/Total layers", "Expert size", "Active/Total experts"],
        rows,
    )


def test_table1(benchmark):
    table = benchmark.pedantic(build_table, rounds=1, iterations=1)
    emit("table1_models", table)
