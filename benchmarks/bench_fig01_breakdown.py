"""Fig. 1a: per-device MoE latency breakdown across cluster classes.

DeepSeek-V3 decode with EP equal to the device count of each platform:
DGX (E/D = 256/32), NVL72 (256/72), WSC 4x(8x8) (256/256) without and with
MoEntwine.  Total latency is the max of computation and communication (the
phases overlap); the bars show how the all-to-all share shrinks and
computation dominates once MoEntwine removes the communication bottleneck.
"""

import numpy as np
from helpers import comm_breakdown, emit, us

from repro.analysis.report import format_table
from repro.engine.compute import ComputeModel
from repro.models import DEEPSEEK_V3
from repro.systems import build_dgx, build_multi_wsc, build_nvl72

TOKENS_PER_DEVICE = 64


def measure(system, tokens_per_device=TOKENS_PER_DEVICE):
    model = system.model
    tokens_per_group = tokens_per_device * system.num_devices // system.mapping.dp
    _, alltoall = comm_breakdown(system, tokens_per_group=tokens_per_group)
    loads = np.full(
        model.num_experts,
        tokens_per_device * system.num_devices * model.experts_per_token
        / model.num_experts,
    )
    moe = ComputeModel(system.device, model).moe_peak_time(
        loads, system.fresh_placement()
    )
    total = max(moe.total, alltoall)
    return alltoall, moe.total, total


def build_table():
    model = DEEPSEEK_V3
    configs = [
        ("DGX 4-node (E/D=256/32)", build_dgx(model, num_nodes=4, tp=4)),
        ("NVL72 (E/D=256/72)", build_nvl72(model, tp=4)),
        ("WSC 4x(8x8) baseline (E/D=256/256)",
         build_multi_wsc(model, 4, 8, tp=4, mapping="baseline")),
        ("WSC 4x(8x8) + MoEntwine (E/D=256/256)",
         build_multi_wsc(model, 4, 8, tp=4, mapping="her")),
    ]
    rows = []
    for name, system in configs:
        alltoall, moe, total = measure(system)
        rows.append(
            [
                name,
                f"{us(alltoall):.1f}us",
                f"{us(moe):.1f}us",
                f"{us(total):.1f}us",
                f"{alltoall / total:.2f}",
            ]
        )
    return format_table(
        ["Platform", "All-to-all", "MoE compute", "Total (max)", "A2A share"], rows
    )


def test_fig01_breakdown(benchmark):
    table = benchmark.pedantic(build_table, rounds=1, iterations=1)
    emit("fig01_breakdown", table)
