"""Fig. 1a, per-device MoE latency breakdown across cluster classes.

Thin wrapper over the ``fig01_breakdown`` spec in
``repro.experiments.figures.fig01`` (see its docstring for the paper
context); run standalone with ``python -m repro.experiments run fig01``.
"""

from helpers import run_and_emit


def test_fig01_breakdown(benchmark):
    run_and_emit(benchmark, "fig01_breakdown")
