"""Fig. 13c, ER-Mapping improvement across WSC scales and TP degrees.

Thin wrapper over the ``fig13c_scales`` spec in
``repro.experiments.figures.fig13c`` (see its docstring for the paper
context); run standalone with ``python -m repro.experiments run fig13c``.
"""

from helpers import run_and_emit


def test_fig13c_scales(benchmark):
    run_and_emit(benchmark, "fig13c_scales")
