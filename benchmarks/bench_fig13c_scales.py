"""Fig. 13c: ER-Mapping improvement across WSC scales and TP degrees.

Qwen3, single wafers.  The paper's shape: ER-Mapping consistently improves
on the baseline mapping, with a sweet spot where the FTD/entwined-ring
geometry best balances all-to-all against all-reduce.
"""

from helpers import comm_breakdown, emit

from repro.analysis.report import format_table
from repro.models import QWEN3_235B
from repro.systems import build_wsc

CONFIGS = [
    (4, [2, 4, 8]),
    (6, [2, 4, 6, 18]),
    (8, [2, 4, 8, 16]),
]


def build_table():
    model = QWEN3_235B
    rows = []
    for side, tps in CONFIGS:
        for tp in tps:
            baseline = build_wsc(model, side, tp=tp, mapping="baseline")
            er = build_wsc(model, side, tp=tp, mapping="er")
            base_total = sum(comm_breakdown(baseline))
            er_total = sum(comm_breakdown(er))
            rows.append(
                [
                    f"{side}x{side}",
                    tp,
                    f"{(1 - er_total / base_total) * 100:.0f}%",
                ]
            )
    return format_table(["WSC", "TP", "ER-Mapping improvement"], rows)


def test_fig13c_scales(benchmark):
    table = benchmark.pedantic(build_table, rounds=1, iterations=1)
    emit("fig13c_scales", table)
