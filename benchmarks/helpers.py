"""Shared helpers for the figure/table benchmarks.

Every benchmark regenerates one table or figure of the paper: it computes
the same rows/series, prints them, and writes them to
``benchmarks/results/<name>.txt`` so EXPERIMENTS.md can cite measured
numbers.  Absolute values are simulator-specific; the shapes are the
reproduction target.
"""

import os

import numpy as np

from repro.network.alltoall import simulate_alltoall, uniform_demand

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def emit(name: str, text: str) -> None:
    """Print a result block and persist it under benchmarks/results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    banner = f"\n===== {name} =====\n{text}\n"
    print(banner)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as handle:
        handle.write(text + "\n")


def comm_breakdown(system, tokens_per_group=256):
    """(allreduce_s, alltoall_s) for one sparse layer, balanced gating."""
    model = system.model
    mapping = system.mapping
    placement = system.fresh_placement()
    demand = uniform_demand(
        mapping.dp,
        model.num_experts,
        tokens_per_group,
        model.experts_per_token,
        model.token_bytes,
    )
    allreduce = mapping.simulate_allreduce(tokens_per_group * model.token_bytes)
    alltoall = simulate_alltoall(
        system.topology, demand, placement.destinations, mapping.token_holders
    )
    return allreduce.duration, alltoall.duration


def skewed_loads(model, num_devices, tokens_per_device, seed=0, alpha=2.0):
    """A fixed skewed expert-load vector shared across platform configs."""
    rng = np.random.default_rng(seed)
    popularity = rng.dirichlet(np.full(model.num_experts, alpha))
    total = tokens_per_device * num_devices * model.experts_per_token
    return popularity * total


def us(seconds: float) -> float:
    return seconds * 1e6
