"""Shared helpers for the figure/table benchmarks.

Every benchmark regenerates one table or figure of the paper by running
its registered :class:`~repro.experiments.spec.ExperimentSpec` through the
shared :class:`~repro.experiments.runner.Runner` — with content-hashed
result caching under ``benchmarks/results/cache/`` and optional worker
parallelism (``REPRO_BENCH_JOBS``) — then writing the rendered text to
``benchmarks/results/<name>.txt`` so EXPERIMENTS.md can cite measured
numbers.  Absolute values are simulator-specific; the shapes are the
reproduction target.

The measurement/render code itself lives in ``repro.experiments.figures``;
the ``bench_*.py`` files are thin spec-invoking wrappers kept so
``pytest benchmarks/`` keeps working as before.
"""

import os

from repro.experiments import Runner, get_spec
from repro.experiments.common import emit


def run_and_emit(benchmark, spec_name: str, jobs: int | None = None) -> str:
    """Run one spec through the shared runner and emit its artifact."""
    spec = get_spec(spec_name)
    runner = Runner(
        jobs=jobs or int(os.environ.get("REPRO_BENCH_JOBS", "1")),
        use_cache=os.environ.get("REPRO_BENCH_NO_CACHE", "") == "",
    )
    text = benchmark.pedantic(
        lambda: runner.run_text(spec), rounds=1, iterations=1
    )
    emit(spec_name, text)
    return text
