"""Fig. 4: EP sweep — per-device MoE performance and time breakdown.

For EP in {8, 16, 32, 72, 256} (EP = device count), the compute vs
memory-access split of the per-device MoE time and the resulting relative
per-device performance, for DeepSeek-V3 and Qwen3.  The paper's annotations
(memory share falling from ~44% to ~22% for DeepSeek-V3) are the shape to
match.
"""

import numpy as np
from helpers import emit

from repro.analysis.report import format_table
from repro.engine.compute import ComputeModel
from repro.hardware.device import B200
from repro.mapping.placement import ExpertPlacement
from repro.models import DEEPSEEK_V3, QWEN3_235B

EP_POINTS = [8, 16, 32, 72, 256]
TOKENS_PER_DEVICE = 64


def sweep(model):
    compute = ComputeModel(B200, model)
    rows = []
    baseline_throughput = None
    for ep in EP_POINTS:
        placement = ExpertPlacement(model.num_experts, ep)
        total_selected = TOKENS_PER_DEVICE * ep * model.experts_per_token
        loads = np.full(model.num_experts, total_selected / model.num_experts)
        peak = compute.moe_peak_time(loads, placement)
        throughput = TOKENS_PER_DEVICE / peak.total
        if baseline_throughput is None:
            baseline_throughput = throughput
        rows.append(
            [
                ep,
                f"{model.num_experts / ep:.2f}",
                f"{peak.memory_fraction * 100:.1f}%",
                f"{(1 - peak.memory_fraction) * 100:.1f}%",
                f"{throughput / baseline_throughput:.2f}x",
            ]
        )
    return format_table(
        ["EP", "E/D", "Memory access", "Computation", "Rel. per-device perf"], rows
    )


def test_fig04_deepseek(benchmark):
    table = benchmark.pedantic(sweep, args=(DEEPSEEK_V3,), rounds=1, iterations=1)
    emit("fig04_ep_sweep_deepseek_v3", table)


def test_fig04_qwen3(benchmark):
    table = benchmark.pedantic(sweep, args=(QWEN3_235B,), rounds=1, iterations=1)
    emit("fig04_ep_sweep_qwen3", table)
