"""Fig. 4, EP sweep: per-device MoE performance and time breakdown.

Thin wrapper over the ``fig04_ep_sweep_*`` specs in
``repro.experiments.figures.fig04`` (see its docstring for the paper
context); run standalone with ``python -m repro.experiments run fig04``.
"""

from helpers import run_and_emit


def test_fig04_deepseek(benchmark):
    run_and_emit(benchmark, "fig04_ep_sweep_deepseek_v3")


def test_fig04_qwen3(benchmark):
    run_and_emit(benchmark, "fig04_ep_sweep_qwen3")
