"""Fig. 11, hot/cold link heatmaps of the two phases under ER-Mapping.

Thin wrapper over the ``fig11_heatmaps`` spec in
``repro.experiments.figures.fig11`` (see its docstring for the paper
context); run standalone with ``python -m repro.experiments run fig11``.
"""

from helpers import run_and_emit


def test_fig11_heatmaps(benchmark):
    run_and_emit(benchmark, "fig11_heatmaps")
