"""Fig. 11: hot/cold link heatmaps of the two phases under ER-Mapping.

Renders ASCII heatmaps of per-link traffic during the attention all-reduce
and the MoE all-to-all, and reports the complementarity score — the paper's
observation that every link is cold in at least one phase (exact on 2x2 FTD
tiles, high elsewhere).
"""

from helpers import emit

from repro.balancer.heat import classify_links, complementarity
from repro.mapping.base import ParallelismConfig
from repro.mapping.er import ERMapping
from repro.mapping.placement import ExpertPlacement
from repro.models import QWEN3_235B
from repro.network.alltoall import simulate_alltoall, uniform_demand
from repro.topology.mesh import MeshTopology


def ascii_heatmap(mesh, link_bytes):
    """Character map: for each device, mark hot (#) / warm (+) / cold (.)
    based on the hottest link touching it."""
    peak = max(link_bytes.values(), default=1.0)
    lines = []
    for x in range(mesh.height):
        cells = []
        for y in range(mesh.width):
            device = x * mesh.width + y
            local_peak = max(
                (
                    volume
                    for (src, dst), volume in link_bytes.items()
                    if src == device or dst == device
                ),
                default=0.0,
            )
            ratio = local_peak / peak if peak else 0.0
            cells.append("#" if ratio > 0.5 else "+" if ratio > 0.05 else ".")
        lines.append(" ".join(cells))
    return "\n".join(lines)


def analyse(side, tp, tp_shape):
    mesh = MeshTopology(side, side)
    mapping = ERMapping(
        mesh, ParallelismConfig(tp=tp, dp=side * side // tp, tp_shape=tp_shape)
    )
    model = QWEN3_235B
    placement = ExpertPlacement(model.num_experts, mesh.num_devices)
    allreduce = mapping.simulate_allreduce(256 * model.token_bytes)
    demand = uniform_demand(
        mapping.dp, model.num_experts, 256, model.experts_per_token, model.token_bytes
    )
    alltoall = simulate_alltoall(
        mesh, demand, placement.destinations, mapping.token_holders
    )
    score = complementarity(
        classify_links(mesh, allreduce.link_bytes),
        classify_links(mesh, alltoall.link_bytes),
    )
    return (
        f"--- {side}x{side} WSC, TP={tp} {tp_shape} ---\n"
        f"attention all-reduce device heat:\n{ascii_heatmap(mesh, allreduce.link_bytes)}\n"
        f"MoE all-to-all device heat:\n{ascii_heatmap(mesh, alltoall.link_bytes)}\n"
        f"complementarity (links cold in >= 1 phase): {score:.2f}"
    )


def build_report():
    blocks = [
        analyse(4, 4, (2, 2)),
        analyse(4, 2, (2, 1)),
        analyse(6, 4, (2, 2)),
    ]
    return "\n\n".join(blocks)


def test_fig11_heatmaps(benchmark):
    report = benchmark.pedantic(build_report, rounds=1, iterations=1)
    emit("fig11_heatmaps", report)
