"""Fig. 13d, Hierarchical ER-Mapping on multi-WSC systems.

Thin wrapper over the ``fig13d_multiwafer`` spec in
``repro.experiments.figures.fig13d`` (see its docstring for the paper
context); run standalone with ``python -m repro.experiments run fig13d``.
"""

from helpers import run_and_emit


def test_fig13d_multiwafer(benchmark):
    run_and_emit(benchmark, "fig13d_multiwafer")
