"""Fig. 13d: Hierarchical ER-Mapping on multi-WSC systems.

Four-wafer systems at three wafer sizes and several TP degrees: baseline
mapping vs flat ER vs HER.  The paper's shape: HER achieves consistent
improvement over the baseline in all cases, unlike pure ER whose benefit
varies with the configuration.
"""

from helpers import comm_breakdown, emit

from repro.analysis.report import format_table
from repro.models import QWEN3_235B
from repro.systems import build_multi_wsc

CONFIGS = [
    (4, [4, 8, 16]),
    (6, [4, 6, 36]),
    (8, [4, 8, 16]),
]


def build_table():
    model = QWEN3_235B
    rows = []
    for side, tps in CONFIGS:
        for tp in tps:
            base = build_multi_wsc(model, 4, side, tp=tp, mapping="baseline")
            flat = build_multi_wsc(model, 4, side, tp=tp, mapping="er")
            her = build_multi_wsc(model, 4, side, tp=tp, mapping="her")
            base_total = sum(comm_breakdown(base, tokens_per_group=64))
            flat_total = sum(comm_breakdown(flat, tokens_per_group=64))
            her_total = sum(comm_breakdown(her, tokens_per_group=64))
            rows.append(
                [
                    f"4x({side}x{side})",
                    tp,
                    f"{(1 - flat_total / base_total) * 100:.0f}%",
                    f"{(1 - her_total / base_total) * 100:.0f}%",
                ]
            )
    return format_table(
        ["System", "TP", "ER vs baseline", "HER vs baseline"], rows
    )


def test_fig13d_multiwafer(benchmark):
    table = benchmark.pedantic(build_table, rounds=1, iterations=1)
    emit("fig13d_multiwafer", table)
