"""Request-level SLO benchmark (open-loop serving front end).

Thin wrapper over the uncacheable ``slo_serving`` spec in
``repro.experiments.figures.slo_serving``: the 64-device 8x8 wafer
serving seeded open-loop traffic (steady Poisson, diurnal overload,
MMPP flash crowds, and a straggler-faulted run that must blacklist and
reinstate a backend) through the continuous-batching front end, with
TTFT/TPOT percentiles and goodput per config.  Run standalone with
``python -m repro.experiments run slo_serving``, or directly —

    python benchmarks/bench_slo_serving.py --requests 96

— to sweep other request counts without editing the spec
(``--requests`` seeds ``REPRO_SLO_BENCH_REQUESTS`` before the spec
module loads; reduced runs emit ``BENCH_slo.smoke.json``, only the
full-length grid updates the tracked ``BENCH_slo.json``).
"""

from helpers import run_and_emit


def test_slo_serving(benchmark):
    run_and_emit(benchmark, "slo_serving")


def main() -> None:
    import argparse
    import os

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--requests",
        type=int,
        help="open-loop requests per config (default: the spec's 256)",
    )
    args = parser.parse_args()
    # The spec reads its grid from the environment at import time, so the
    # override must land before repro.experiments pulls it in.
    if args.requests:
        os.environ["REPRO_SLO_BENCH_REQUESTS"] = str(args.requests)

    from repro.experiments import Runner, get_spec

    text = Runner(jobs=1, use_cache=False).run_text(get_spec("slo_serving"))
    print(text)


if __name__ == "__main__":
    main()
