"""Fig. 14a, ESP for large-expert models.

Thin wrapper over the ``fig14a_esp`` spec in
``repro.experiments.figures.fig14a`` (see its docstring for the paper
context); run standalone with ``python -m repro.experiments run fig14a``.
"""

from helpers import run_and_emit


def test_fig14a_esp(benchmark):
    run_and_emit(benchmark, "fig14a_esp")
