"""Fig. 14a: ESP (Expert Sharding Parallelism) for large-expert models.

DBRX and Mixtral shard each expert across devices.  The paper's shape:
WSC beats DGX by ~50%; ER-Mapping still helps but the margin is modest
(~9%) because the EP-group partial-sum all-reduce dominates.
"""

from helpers import emit, us

from repro.analysis.report import format_table
from repro.models import DBRX, MIXTRAL_8X22B
from repro.network.esp import simulate_esp
from repro.systems import build_dgx, build_wsc

TOKENS = 256


def build_table():
    rows = []
    for model in (DBRX, MIXTRAL_8X22B):
        dgx = build_dgx(model, num_nodes=4, tp=4)
        wsc = build_wsc(model, 6, tp=4, mapping="baseline")
        er = build_wsc(model, 6, tp=4, mapping="er")
        dgx_esp = simulate_esp(dgx.mapping, model, TOKENS)
        wsc_esp = simulate_esp(wsc.mapping, model, TOKENS)
        er_esp = simulate_esp(er.mapping, model, TOKENS)
        rows.append(
            [
                model.name,
                f"{us(dgx_esp.duration):.1f}us",
                f"{us(wsc_esp.duration):.1f}us",
                f"{us(er_esp.duration):.1f}us",
                f"{(1 - wsc_esp.duration / dgx_esp.duration) * 100:.0f}%",
                f"{(1 - er_esp.duration / wsc_esp.duration) * 100:.0f}%",
            ]
        )
    return format_table(
        ["Model", "DGX ESP", "WSC ESP", "WSC+ER ESP", "WSC vs DGX", "ER vs WSC"],
        rows,
    )


def test_fig14a_esp(benchmark):
    table = benchmark.pedantic(build_table, rounds=1, iterations=1)
    emit("fig14a_esp", table)
