"""Fig. 6, all-reduce vs all-to-all latency as the WSC scales.

Thin wrapper over the ``fig06_comm_scaling`` spec in
``repro.experiments.figures.fig06`` (see its docstring for the paper
context); run standalone with ``python -m repro.experiments run fig06``.
"""

from helpers import run_and_emit


def test_fig06_comm_scaling(benchmark):
    run_and_emit(benchmark, "fig06_comm_scaling")
