"""Fig. 6: all-reduce vs all-to-all latency as the WSC scales.

Single wafers 4x4 / 6x6 / 8x8 and multi-wafer 4x(6x6) / 4x(8x8) under the
baseline mapping, in a prefill regime (4096 tokens per group, link latency
negligible) and a decode regime (256 tokens per group).  The paper's shape:
all-reduce stays near-flat while all-to-all surges with scale.
"""

from helpers import comm_breakdown, emit, us

from repro.analysis.report import format_table
from repro.models import QWEN3_235B
from repro.systems import build_multi_wsc, build_wsc


def platforms():
    model = QWEN3_235B
    return [
        ("4x4", build_wsc(model, 4, tp=4, mapping="baseline")),
        ("6x6", build_wsc(model, 6, tp=4, mapping="baseline")),
        ("8x8", build_wsc(model, 8, tp=4, mapping="baseline")),
        ("4x(6x6)", build_multi_wsc(model, 4, 6, tp=4, mapping="baseline")),
        ("4x(8x8)", build_multi_wsc(model, 4, 8, tp=4, mapping="baseline")),
    ]


def build_table():
    rows = []
    for name, system in platforms():
        prefill_ar, prefill_a2a = comm_breakdown(system, tokens_per_group=4096)
        decode_ar, decode_a2a = comm_breakdown(system, tokens_per_group=256)
        rows.append(
            [
                name,
                f"{us(prefill_ar):.1f}us",
                f"{us(prefill_a2a):.1f}us",
                f"{us(decode_ar):.2f}us",
                f"{us(decode_a2a):.2f}us",
                f"{decode_a2a / decode_ar:.1f}x",
            ]
        )
    return format_table(
        [
            "Scale",
            "Prefill AR",
            "Prefill A2A",
            "Decode AR",
            "Decode A2A",
            "Decode A2A/AR",
        ],
        rows,
    )


def test_fig06_comm_scaling(benchmark):
    table = benchmark.pedantic(build_table, rounds=1, iterations=1)
    emit("fig06_comm_scaling", table)
