"""Fig. 15, run-time traces of device loads under each balancing strategy.

Thin wrapper over the ``fig15_balancer_trace`` spec in
``repro.experiments.figures.fig15`` (see its docstring for the paper
context); run standalone with ``python -m repro.experiments run fig15``.
"""

from helpers import run_and_emit


def test_fig15_balancer_trace(benchmark):
    run_and_emit(benchmark, "fig15_balancer_trace")
