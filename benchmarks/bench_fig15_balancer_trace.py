"""Fig. 15: run-time traces of device loads under each balancing strategy.

Qwen3 on an 8x8 wafer with a drifting mixed workload.  The paper's shape:
no balancing leaves a ~2x peak deviation; greedy balancing halves it but
interrupts roughly every 10 iterations; topology-aware balancing mitigates
the interruptions; non-invasive balancing eliminates them while achieving
the best balance.
"""

from helpers import emit

from repro.analysis.report import format_table
from repro.balancer import (
    GreedyBalancer,
    NoBalancer,
    NonInvasiveBalancer,
    TopologyAwareBalancer,
)
from repro.engine import EngineConfig, ServingConfig, ServingSimulator
from repro.models import QWEN3_235B
from repro.systems import build_wsc
from repro.workload import AzureLikeMixer, CHAT, CODING, MATH, PRIVACY, GatingSimulator

ITERATIONS = 120
SKIP = 30

STRATEGIES = [
    ("No balance", NoBalancer),
    ("Greedy", GreedyBalancer),
    ("Topology-aware", TopologyAwareBalancer),
    ("Non-invasive", NonInvasiveBalancer),
]


def run_strategy(balancer_cls):
    model = QWEN3_235B
    system = build_wsc(model, side=8, tp=4, mapping="er")
    workload = GatingSimulator(
        model,
        num_groups=system.mapping.dp,
        tokens_per_group=128,
        mixer=AzureLikeMixer([CHAT, CODING, MATH, PRIVACY], period_iters=80),
        num_layers=2,
        seed=17,
    )
    simulator = ServingSimulator(
        system.device,
        model,
        system.mapping,
        workload,
        balancer_cls,
        engine_config=EngineConfig(tokens_per_group=128),
        serving_config=ServingConfig(num_iterations=ITERATIONS),
    )
    return simulator.run()


def build_table():
    rows = []
    for name, cls in STRATEGIES:
        trace = run_strategy(cls)
        rows.append(
            [
                name,
                f"{trace.mean_load_ratio(SKIP):.2f}",
                trace.num_migrations(),
                trace.num_interruptions(),
                f"{trace.migration_overhead_fraction(SKIP) * 100:.1f}%",
                f"{trace.mean_latency(SKIP) * 1e3:.2f}ms",
            ]
        )
    return format_table(
        [
            "Strategy",
            "Max/Avg load",
            "Migrations",
            "Interruptions",
            "Migration overhead",
            "Iteration latency",
        ],
        rows,
    )


def test_fig15_balancer_trace(benchmark):
    table = benchmark.pedantic(build_table, rounds=1, iterations=1)
    emit("fig15_balancer_trace", table)
