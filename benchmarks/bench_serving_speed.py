"""Serving-loop wall-clock microbenchmark (simulator speed, not model perf).

Thin wrapper over the uncacheable ``serving_speed`` spec in
``repro.experiments.figures.serving_speed``: the 64-device 8x8 trajectory
system (64-expert Qwen3 variant, 300 serving iterations per balancer at
proxy and full DeepSeek-V3 depth, swept over the (pricing, demand,
operator) mode axis — layer-0 broadcast, per-layer placement pricing,
demand-resolved per-layer pricing, and the dense vs sparse incremental
all-to-all operator) plus the 1024-device four-wafer 4x(16x16) HER
scale case, which only the sparse operator can price and which runs at a
tenth of the base iteration count.  Run standalone with
``python -m repro.experiments run serving_speed``, or directly —

    python benchmarks/bench_serving_speed.py --layers 2,58,94

— to sweep other base-system depths without editing the spec
(``--layers`` seeds ``REPRO_SERVING_BENCH_LAYERS`` before the spec
module loads).
"""

from helpers import run_and_emit


def test_serving_speed(benchmark):
    run_and_emit(benchmark, "serving_speed")


def main() -> None:
    import argparse
    import os

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--layers",
        help="comma-separated simulated MoE layer depths (default: the "
        "spec's 2,58 axis)",
    )
    parser.add_argument(
        "--iterations",
        type=int,
        help="serving iterations per config (default: the spec's 300)",
    )
    args = parser.parse_args()
    # The spec reads its grid from the environment at import time, so the
    # overrides must land before repro.experiments pulls it in.
    if args.layers:
        os.environ["REPRO_SERVING_BENCH_LAYERS"] = args.layers
    if args.iterations:
        os.environ["REPRO_SERVING_BENCH_ITERS"] = str(args.iterations)

    from repro.experiments import Runner, get_spec

    text = Runner(jobs=1, use_cache=False).run_text(get_spec("serving_speed"))
    print(text)


if __name__ == "__main__":
    main()
