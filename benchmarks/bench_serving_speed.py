"""Serving-loop wall-clock microbenchmark (simulator speed, not model perf).

Thin wrapper over the uncacheable ``serving_speed`` spec in
``repro.experiments.figures.serving_speed``: 64 devices (8x8 wafer), a
64-expert Qwen3 variant, 300 serving iterations per balancer.  Run
standalone with ``python -m repro.experiments run serving_speed``.
"""

from helpers import run_and_emit


def test_serving_speed(benchmark):
    run_and_emit(benchmark, "serving_speed")
